"""The lint runner: file discovery, rule selection, ``noqa``, reporting.

Usage::

    repro lint [paths] [--select SIM001,SIM004] [--ignore SIM006] \\
               [--profile kernels,compile|all] [--format text|json] \\
               [--baseline FILE | --no-baseline] [--update-baseline] \\
               [--strict-baseline] [--stats] [--list-rules]
    python -m repro.devtools.lint src/repro tests

Exit codes follow the classic contract: **0** clean, **1** findings,
**2** usage error (unknown rule ID, unreadable path).

Selection defaults come from ``[tool.repro.lint]`` in ``pyproject.toml``
(``select``/``ignore`` arrays, plus a ``baseline`` file path), so CI and
developers run the same configuration with no flags.  ``--profile``
names one or more curated rule sets, comma-separated (``kernels`` =
SIM201–SIM205, ``concurrency`` = SIM206–SIM212, ``compile`` =
SIM301–SIM308, ``all`` = every registered rule across all four tiers);
multiple profiles union.  ``--list-rules`` prints every registered rule
with its tier.  A finding can be suppressed at a single line with the
pragma::

    risky_line()  # repro: noqa SIM003
    other_line()  # repro: noqa SIM001, SIM005
    anything()    # repro: noqa          (suppresses every rule)

An *explicit-rule* pragma on a function's header (its ``def`` line or
any decorator line) widens to the whole function body — that is how a
kernel exempts itself from one contract rule without peppering every
statement.  The bare form stays line-granular on purpose: a blanket
whole-function exemption should never be one keystroke.

Intentional findings that cannot be fixed (a documented workaround, a
vendored idiom) live in a committed **baseline** file: findings matching
a ``(path, rule, message)`` entry are reported as baselined and do not
fail the run.  ``--update-baseline`` rewrites the file from the current
findings (pruning entries no finding matches any more); stale entries
are warned about on every run and ``--strict-baseline`` turns that
warning into a failure, so the baseline is a ratchet — it can only
shrink as findings are fixed, never silently hide fixed ones.

Suppressions are deliberate exemptions — each should be justifiable in
review, which is exactly why they are spelled in full at the site.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from . import contracts as _contracts  # noqa: F401  (registers SIM201+)
from . import flow as _flow  # noqa: F401  (imported to register SIM101+)
from .compile_rules import COMPILE_RULES, run_compile_rules
from .contracts import CONTRACT_RULES, PROFILES, run_contract_rules
from .findings import Finding, format_findings, sort_findings
from .graph import PROJECT_RULES, ProjectGraph, run_project_rules
from .rules import RULES, LintContext, run_rules

__all__ = [
    "LintError",
    "LintStats",
    "add_lint_arguments",
    "apply_baseline",
    "collect_files",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "load_config",
    "resolve_selection",
    "run_from_args",
    "write_baseline",
    "main",
]

#: rule id reserved for files the parser rejects (always reported).
SYNTAX_RULE = "SIM000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b\s*:?\s*(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)?",
)


class LintError(Exception):
    """A usage error (unknown rule, unreadable path) — CLI exit code 2."""


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------


#: tier label per registry, in rule-number order (``--list-rules``).
_TIERS: tuple[tuple[str, dict], ...] = (
    ("file", RULES),
    ("flow", PROJECT_RULES),
    ("contract", CONTRACT_RULES),
    ("compile", COMPILE_RULES),
)


def _all_rule_ids() -> set[str]:
    """Every known rule ID across the four tiers.

    Per-file (SIM00x), whole-program flow (SIM10x), kernel-contract /
    concurrency (SIM20x) and compile-readiness (SIM30x).
    """
    return set().union(*(set(registry) for _, registry in _TIERS))


def _validate_rules(ids: Iterable[str], origin: str) -> set[str]:
    known_ids = _all_rule_ids()
    out = set()
    for rule_id in ids:
        rid = rule_id.strip().upper()
        if not rid:
            continue
        if rid not in known_ids:
            known = ", ".join(sorted(known_ids))
            raise LintError(f"unknown rule {rid!r} in {origin} (known: {known})")
        out.add(rid)
    return out


def _profile_names(profile: str | Iterable[str]) -> list[str]:
    """Flatten a profile argument into individual names.

    Accepts one name, a comma-separated string (``"kernels,compile"``)
    or an iterable of either.
    """
    items = [profile] if isinstance(profile, str) else list(profile)
    names: list[str] = []
    for item in items:
        names.extend(p.strip() for p in item.split(",") if p.strip())
    return names


def resolve_selection(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    profile: str | Iterable[str] | None = None,
) -> set[str]:
    """Final rule-ID set.

    ``profile`` names the base set — one or more of ``kernels``,
    ``concurrency``, ``compile`` and ``all`` (= every registered rule),
    comma-separated or as an iterable; several profiles union.  Without
    one the base is every rule.  ``select`` then *narrows* the base
    (intersection when a profile is active, replacement otherwise — a
    bare ``--select`` is already an exact request), and ``ignore``
    always subtracts.
    """
    if profile is not None:
        names = _profile_names(profile)
        if not names:
            raise LintError("empty --profile")
        base: set[str] = set()
        for name in names:
            if name == "all":
                base |= _all_rule_ids()
            elif name in PROFILES:
                base |= set(PROFILES[name])
            else:
                known = ", ".join([*sorted(PROFILES), "all"])
                raise LintError(f"unknown profile {name!r} (known: {known})")
        if select:
            base &= _validate_rules(select, "--select")
        chosen = base
    else:
        chosen = _validate_rules(select, "--select") if select else _all_rule_ids()
    chosen -= _validate_rules(ignore, "--ignore") if ignore else set()
    return chosen


# ---------------------------------------------------------------------------
# pyproject configuration
# ---------------------------------------------------------------------------


def _parse_toml_minimal(text: str) -> dict:
    """Tiny fallback for Python < 3.11 (no :mod:`tomllib`).

    Understands just enough TOML to read ``[tool.repro.lint]``: string
    arrays, possibly spanning lines.  Good enough because that section is
    under our control; real TOML parsing is used when available.
    """
    section: dict[str, list[str]] = {}
    in_section = False
    pending_key: str | None = None
    pending_val = ""
    for raw in text.splitlines():
        line = raw.strip()
        if pending_key is not None:
            pending_val += " " + line
            if line.endswith("]"):
                section[pending_key] = list(ast.literal_eval(pending_val.strip()))
                pending_key = None
            continue
        if line.startswith("["):
            in_section = line == "[tool.repro.lint]"
            continue
        if not in_section or "=" not in line or line.startswith("#"):
            continue
        key, _, val = line.partition("=")
        key, val = key.strip(), val.strip()
        if val.startswith("[") and not val.endswith("]"):
            pending_key, pending_val = key, val
            continue
        try:
            section[key] = ast.literal_eval(val)
        except (ValueError, SyntaxError):
            continue
    return {"tool": {"repro": {"lint": section}}} if section else {}


def load_config(start: Path | None = None) -> dict:
    """``[tool.repro.lint]`` from the nearest ``pyproject.toml``, or ``{}``.

    Searches ``start`` (default: cwd) and its parents, mirroring how the
    established tools locate their configuration.
    """
    here = (start or Path.cwd()).resolve()
    candidates = [here, *here.parents] if here.is_dir() else list(here.parents)
    for directory in candidates:
        pyproject = directory / "pyproject.toml"
        if not pyproject.is_file():
            continue
        text = pyproject.read_text(encoding="utf-8")
        try:
            import tomllib

            data = tomllib.loads(text)
        except ModuleNotFoundError:  # Python 3.10
            data = _parse_toml_minimal(text)
        except Exception:
            return {}
        return data.get("tool", {}).get("repro", {}).get("lint", {})
    return {}


# ---------------------------------------------------------------------------
# linting
# ---------------------------------------------------------------------------


def _noqa_map(source: str) -> dict[int, set[str] | None]:
    """Line number → suppressed rule IDs (``None`` = every rule)."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules:
            out[lineno] = {r.strip().upper() for r in rules.split(",")}
        else:
            out[lineno] = None
    return out


@dataclass
class _Noqa:
    """One file's suppressions: exact lines plus function-wide spans."""

    lines: dict[int, set[str] | None] = field(default_factory=dict)
    #: (first header line, last body line, rules) for explicit-rule
    #: pragmas sitting on a ``def`` or decorator line.
    spans: list[tuple[int, int, frozenset[str]]] = field(default_factory=list)

    def suppresses(self, finding: Finding) -> bool:
        at_line = self.lines.get(finding.line, "absent")
        if at_line is None:
            return True
        if isinstance(at_line, set) and finding.rule in at_line:
            return True
        return any(
            start <= finding.line <= end and finding.rule in rules
            for start, end, rules in self.spans
        )


def _function_spans(
    tree: ast.Module, lines: dict[int, set[str] | None]
) -> list[tuple[int, int, frozenset[str]]]:
    """Widen explicit-rule header pragmas to the whole function body.

    A ``# repro: noqa: SIMxxx`` on a function's ``def`` line or on any of
    its decorator lines suppresses those rules from the first decorator
    through the function's last line.  Bare pragmas stay line-only — a
    blanket whole-function exemption must name what it exempts.
    """
    spans: list[tuple[int, int, frozenset[str]]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        header = [d.lineno for d in node.decorator_list] + [node.lineno]
        rules: set[str] = set()
        for lineno in header:
            at_line = lines.get(lineno)
            if isinstance(at_line, set):
                rules |= at_line
        if rules and node.end_lineno is not None:
            spans.append((min(header), node.end_lineno, frozenset(rules)))
    return spans


def _apply_noqa(findings: Iterable[Finding], noqa: dict[str, _Noqa]) -> list[Finding]:
    """Drop findings suppressed by a line pragma or a function-header span."""
    empty = _Noqa()
    return [f for f in findings if not noqa.get(f.path, empty).suppresses(f)]


def _lint_one(
    source: str, path: str, chosen: set[str]
) -> tuple[list[Finding], ast.Module | None, _Noqa]:
    """Per-file pass: (suppressed findings, tree for the project pass, noqa)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule=SYNTAX_RULE,
            message=f"syntax error: {exc.msg}",
        )
        return [finding], None, _Noqa()
    ctx = LintContext.for_path(path)
    findings = run_rules(tree, ctx, select=chosen)
    lines = _noqa_map(source)
    suppressed = _Noqa(lines=lines, spans=_function_spans(tree, lines))
    return _apply_noqa(findings, {path: suppressed}), tree, suppressed


@dataclass
class LintStats:
    """Timing/volume counters for one :func:`lint_paths` run (``--stats``)."""

    files: int = 0
    findings: int = 0
    baselined: int = 0
    graph_builds: int = 0
    parse_seconds: float = 0.0
    graph_seconds: float = 0.0
    rules_seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"stats: files={self.files} findings={self.findings} "
            f"baselined={self.baselined} graph-builds={self.graph_builds} "
            f"parse={self.parse_seconds:.3f}s graph={self.graph_seconds:.3f}s "
            f"rules={self.rules_seconds:.3f}s"
        )


def _needs_graph(chosen: set[str]) -> bool:
    return bool(
        chosen & (set(PROJECT_RULES) | set(CONTRACT_RULES) | set(COMPILE_RULES))
    )


def _run_graph_rules(
    graph: ProjectGraph, chosen: set[str], noqa: dict[str, _Noqa]
) -> list[Finding]:
    """The whole-program tiers (flow + contracts + compile) on one graph."""
    findings: list[Finding] = []
    if chosen & set(PROJECT_RULES):
        findings.extend(run_project_rules(graph, select=chosen))
    if chosen & set(CONTRACT_RULES):
        findings.extend(run_contract_rules(graph, select=chosen))
    if chosen & set(COMPILE_RULES):
        findings.extend(run_compile_rules(graph, select=chosen))
    return _apply_noqa(findings, noqa)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    profile: str | None = None,
) -> list[Finding]:
    """Lint one source string as if it lived at ``path``.

    ``path`` drives the path-scoped rules: pass a virtual location like
    ``src/repro/sim/x.py`` to lint a snippet under ``sim`` conventions.
    The whole-program rules (SIM101+ and SIM201+) run too, over a
    one-module graph — flow within the snippet is visible, callers
    outside it are not.
    """
    chosen = resolve_selection(select, ignore, profile)
    findings, tree, suppressed = _lint_one(source, path, chosen)
    if tree is not None and _needs_graph(chosen):
        graph = ProjectGraph.build([(path, tree)])
        findings.extend(_run_graph_rules(graph, chosen, {path: suppressed}))
    return sort_findings(findings)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.is_file():
            out.add(p)
        else:
            raise LintError(f"no such file or directory: {entry}")
    return sorted(out)


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    profile: str | None = None,
    stats: LintStats | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``.

    The passes share one parse: the per-file rules see each tree in
    isolation; the whole-program tiers (flow SIM101+ and contracts
    SIM201+) both see a single
    :class:`~repro.devtools.graph.ProjectGraph` built from every parsed
    file — the graph is constructed exactly once per run, and its
    ``analysis_cache`` lets the contract rules share the expensive
    interprocedural facts (``--stats`` reports the build count).
    """
    chosen = resolve_selection(select, ignore, profile)
    findings: list[Finding] = []
    parsed: list[tuple[str, ast.Module]] = []
    noqa: dict[str, _Noqa] = {}
    builds_before = ProjectGraph.builds_total
    t0 = time.perf_counter()
    for file in collect_files(paths):
        source = file.read_text(encoding="utf-8")
        per_file, tree, suppressed = _lint_one(source, str(file), chosen)
        findings.extend(per_file)
        if tree is not None:
            parsed.append((str(file), tree))
            noqa[str(file)] = suppressed
    t1 = time.perf_counter()
    graph_seconds = 0.0
    if parsed and _needs_graph(chosen):
        graph = ProjectGraph.build(parsed)
        graph_seconds = time.perf_counter() - t1
        findings.extend(_run_graph_rules(graph, chosen, noqa))
    t2 = time.perf_counter()
    if stats is not None:
        stats.files = len(parsed)
        stats.findings = len(findings)
        stats.graph_builds = ProjectGraph.builds_total - builds_before
        stats.parse_seconds = t1 - t0
        stats.graph_seconds = graph_seconds
        stats.rules_seconds = (t2 - t1) - graph_seconds
    return sort_findings(findings)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

#: default baseline file name (overridable via pyproject / --baseline).
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def _baseline_key(finding: Finding) -> tuple[str, str, str]:
    # Deliberately no line number: baselined findings must survive
    # unrelated edits shifting them around the file.
    return (Path(finding.path).as_posix(), finding.rule, finding.message)


def load_baseline(path: Path) -> Counter[tuple[str, str, str]]:
    """Parse a baseline file into a multiset of ``(path, rule, message)``."""
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return Counter()
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(entries, list):
        raise LintError(f"baseline {path} must be a JSON list of entries")
    out: Counter[tuple[str, str, str]] = Counter()
    for entry in entries:
        try:
            out[(entry["path"], entry["rule"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise LintError(
                f"baseline {path}: each entry needs path/rule/message keys"
            ) from exc
    return out


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter[tuple[str, str, str]]
) -> tuple[list[Finding], int, list[tuple[str, str, str]]]:
    """Split findings into (fresh, count-baselined, stale entries).

    The baseline is a multiset: two identical findings need two entries,
    so fixing one of a duplicated pair still surfaces in CI.  *Stale*
    entries — baseline lines no current finding matched — are returned
    (with multiplicity) so the runner can warn, and ``--strict-baseline``
    can fail, when the baseline hides findings that were already fixed.
    """
    remaining = Counter(baseline)
    fresh: list[Finding] = []
    matched = 0
    for finding in findings:
        key = _baseline_key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched += 1
        else:
            fresh.append(finding)
    stale = sorted(
        key for key, count in remaining.items() for _ in range(count)
    )
    return fresh, matched, stale


def write_baseline(findings: Sequence[Finding], path: Path) -> int:
    """Rewrite ``path`` from the current findings; returns the entry count."""
    entries = [
        {"path": p, "rule": r, "message": m}
        for p, r, m in sorted(_baseline_key(f) for f in findings)
    ]
    path.write_text(json.dumps(entries, indent=2) + "\n", encoding="utf-8")
    return len(entries)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _split_ids(value: str) -> list[str]:
    return [part for part in re.split(r"[,\s]+", value) if part]


def _profile_arg(value: str) -> list[str]:
    """Validating argparse type for ``--profile`` (comma-separated names)."""
    names = _profile_names(value)
    known = ", ".join([*sorted(PROFILES), "all"])
    if not names:
        raise argparse.ArgumentTypeError(f"empty profile (known: {known})")
    for name in names:
        if name != "all" and name not in PROFILES:
            raise argparse.ArgumentTypeError(
                f"unknown profile {name!r} (known: {known})"
            )
    return names


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint options on ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        type=_split_ids,
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to run (default: all, or pyproject)",
    )
    parser.add_argument(
        "--ignore",
        type=_split_ids,
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--profile",
        type=_profile_arg,
        default=None,
        metavar="NAMES",
        help="named rule sets, comma-separated: kernels (SIM201-205), "
        "concurrency (SIM206-212), compile (SIM301-308), or all "
        "registered rules; several profiles union",
    )
    parser.add_argument(
        "--format",
        "--output-format",
        dest="format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text; github = Actions annotations)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=f"baseline file of accepted findings (default: pyproject "
        f"'baseline' key, else {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings (pruning "
        "stale entries) and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail (exit 1) when the baseline contains stale entries no "
        "current finding matches — the CI ratchet",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a one-line timing/volume summary to stderr",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule ID with its tier and summary, then exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simulation-correctness linter for the repro codebase",
    )
    add_lint_arguments(parser)
    return parser


def _baseline_path(args: argparse.Namespace, config: dict) -> Path | None:
    """Where the baseline lives for this invocation, or ``None`` for off."""
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    configured = config.get("baseline")
    if isinstance(configured, str) and configured:
        return Path(configured)
    default = Path(DEFAULT_BASELINE)
    if default.is_file() or args.update_baseline:
        return default
    return None


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        combined: dict[str, tuple[str, str]] = {
            rid: (tier, cls.summary)
            for tier, registry in _TIERS
            for rid, cls in registry.items()
        }
        for rule_id in sorted(combined):
            tier, summary = combined[rule_id]
            print(f"{rule_id}  {tier:<8}  {summary}")
        return 0
    config = load_config(Path(args.paths[0]).resolve() if args.paths else None)
    # CLI selection flags replace the pyproject defaults wholesale — mixing
    # a command-line --select with a configured ignore list surprises.
    if args.select is not None or args.ignore is not None:
        select, ignore = args.select, args.ignore
    elif args.profile is not None:
        # an explicit --profile names the complete base set; the pyproject
        # select/ignore defaults must not narrow it behind the user's back.
        select = ignore = None
    else:
        select, ignore = config.get("select"), config.get("ignore")
    stats = LintStats() if args.stats else None
    try:
        findings = lint_paths(
            args.paths,
            select=select,
            ignore=ignore,
            profile=args.profile,
            stats=stats,
        )
        baseline_file = _baseline_path(args, config)
        if args.update_baseline:
            if baseline_file is None:
                raise LintError("--update-baseline conflicts with --no-baseline")
            count = write_baseline(findings, baseline_file)
            print(f"wrote {count} baseline entries to {baseline_file}")
            return 0
        baselined = 0
        stale: list[tuple[str, str, str]] = []
        if baseline_file is not None:
            findings, baselined, stale = apply_baseline(
                findings, load_baseline(baseline_file)
            )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if stale:
        for path, rule, message in stale:
            print(
                f"stale baseline entry: {path}: {rule} {message}",
                file=sys.stderr,
            )
        print(
            f"warning: {len(stale)} stale baseline entries no finding "
            "matches — run --update-baseline to prune them",
            file=sys.stderr,
        )
    if stats is not None:
        stats.findings = len(findings)
        stats.baselined = baselined
        print(stats.summary(), file=sys.stderr)
    try:
        print(format_findings(findings, fmt=args.format))
    except BrokenPipeError:
        # the reader (e.g. `| head`) went away; the exit code still stands.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    if findings:
        return 1
    return 1 if (stale and args.strict_baseline) else 0


def main(argv: Sequence[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
