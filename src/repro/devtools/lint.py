"""The lint runner: file discovery, rule selection, ``noqa``, reporting.

Usage::

    repro lint [paths] [--select SIM001,SIM004] [--ignore SIM006] \\
               [--format text|json]
    python -m repro.devtools.lint src/repro tests

Exit codes follow the classic contract: **0** clean, **1** findings,
**2** usage error (unknown rule ID, unreadable path).

Selection defaults come from ``[tool.repro.lint]`` in ``pyproject.toml``
(``select``/``ignore`` arrays), so CI and developers run the same
configuration with no flags.  A finding can be suppressed at a single
line with the pragma::

    risky_line()  # repro: noqa SIM003
    other_line()  # repro: noqa SIM001, SIM005
    anything()    # repro: noqa          (suppresses every rule)

Suppressions are deliberate exemptions — each should be justifiable in
review, which is exactly why they are spelled in full at the site.
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
from pathlib import Path
from typing import Iterable, Sequence

from . import flow as _flow  # noqa: F401  (imported to register SIM101+)
from .findings import Finding, format_findings, sort_findings
from .graph import PROJECT_RULES, ProjectGraph, run_project_rules
from .rules import RULES, LintContext, run_rules

__all__ = [
    "LintError",
    "add_lint_arguments",
    "collect_files",
    "lint_source",
    "lint_paths",
    "load_config",
    "resolve_selection",
    "run_from_args",
    "main",
]

#: rule id reserved for files the parser rejects (always reported).
SYNTAX_RULE = "SIM000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b\s*:?\s*(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)?",
)


class LintError(Exception):
    """A usage error (unknown rule, unreadable path) — CLI exit code 2."""


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------


def _all_rule_ids() -> set[str]:
    """Every known rule ID: per-file (SIM00x) plus whole-program (SIM10x)."""
    return set(RULES) | set(PROJECT_RULES)


def _validate_rules(ids: Iterable[str], origin: str) -> set[str]:
    known_ids = _all_rule_ids()
    out = set()
    for rule_id in ids:
        rid = rule_id.strip().upper()
        if not rid:
            continue
        if rid not in known_ids:
            known = ", ".join(sorted(known_ids))
            raise LintError(f"unknown rule {rid!r} in {origin} (known: {known})")
        out.add(rid)
    return out


def resolve_selection(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> set[str]:
    """Final rule-ID set: ``select`` (default: all rules) minus ``ignore``."""
    chosen = _validate_rules(select, "--select") if select else _all_rule_ids()
    chosen -= _validate_rules(ignore, "--ignore") if ignore else set()
    return chosen


# ---------------------------------------------------------------------------
# pyproject configuration
# ---------------------------------------------------------------------------


def _parse_toml_minimal(text: str) -> dict:
    """Tiny fallback for Python < 3.11 (no :mod:`tomllib`).

    Understands just enough TOML to read ``[tool.repro.lint]``: string
    arrays, possibly spanning lines.  Good enough because that section is
    under our control; real TOML parsing is used when available.
    """
    section: dict[str, list[str]] = {}
    in_section = False
    pending_key: str | None = None
    pending_val = ""
    for raw in text.splitlines():
        line = raw.strip()
        if pending_key is not None:
            pending_val += " " + line
            if line.endswith("]"):
                section[pending_key] = list(ast.literal_eval(pending_val.strip()))
                pending_key = None
            continue
        if line.startswith("["):
            in_section = line == "[tool.repro.lint]"
            continue
        if not in_section or "=" not in line or line.startswith("#"):
            continue
        key, _, val = line.partition("=")
        key, val = key.strip(), val.strip()
        if val.startswith("[") and not val.endswith("]"):
            pending_key, pending_val = key, val
            continue
        try:
            section[key] = ast.literal_eval(val)
        except (ValueError, SyntaxError):
            continue
    return {"tool": {"repro": {"lint": section}}} if section else {}


def load_config(start: Path | None = None) -> dict:
    """``[tool.repro.lint]`` from the nearest ``pyproject.toml``, or ``{}``.

    Searches ``start`` (default: cwd) and its parents, mirroring how the
    established tools locate their configuration.
    """
    here = (start or Path.cwd()).resolve()
    candidates = [here, *here.parents] if here.is_dir() else list(here.parents)
    for directory in candidates:
        pyproject = directory / "pyproject.toml"
        if not pyproject.is_file():
            continue
        text = pyproject.read_text(encoding="utf-8")
        try:
            import tomllib

            data = tomllib.loads(text)
        except ModuleNotFoundError:  # Python 3.10
            data = _parse_toml_minimal(text)
        except Exception:
            return {}
        return data.get("tool", {}).get("repro", {}).get("lint", {})
    return {}


# ---------------------------------------------------------------------------
# linting
# ---------------------------------------------------------------------------


def _noqa_map(source: str) -> dict[int, set[str] | None]:
    """Line number → suppressed rule IDs (``None`` = every rule)."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules:
            out[lineno] = {r.strip().upper() for r in rules.split(",")}
        else:
            out[lineno] = None
    return out


def _apply_noqa(
    findings: Iterable[Finding], noqa: dict[str, dict[int, set[str] | None]]
) -> list[Finding]:
    """Drop findings suppressed by a pragma on their own line."""
    kept = []
    for finding in findings:
        rules_at_line = noqa.get(finding.path, {}).get(finding.line, "absent")
        if rules_at_line is None or (
            isinstance(rules_at_line, set) and finding.rule in rules_at_line
        ):
            continue
        kept.append(finding)
    return kept


def _lint_one(
    source: str, path: str, chosen: set[str]
) -> tuple[list[Finding], ast.Module | None, dict[int, set[str] | None]]:
    """Per-file pass: (suppressed findings, tree for the project pass, noqa)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule=SYNTAX_RULE,
            message=f"syntax error: {exc.msg}",
        )
        return [finding], None, {}
    ctx = LintContext.for_path(path)
    findings = run_rules(tree, ctx, select=chosen)
    suppressed = _noqa_map(source)
    return _apply_noqa(findings, {path: suppressed}), tree, suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one source string as if it lived at ``path``.

    ``path`` drives the path-scoped rules: pass a virtual location like
    ``src/repro/sim/x.py`` to lint a snippet under ``sim`` conventions.
    The whole-program rules (SIM101+) run too, over a one-module graph —
    flow within the snippet is visible, callers outside it are not.
    """
    chosen = resolve_selection(select, ignore)
    findings, tree, suppressed = _lint_one(source, path, chosen)
    if tree is not None and chosen & set(PROJECT_RULES):
        graph = ProjectGraph.build([(path, tree)])
        project = run_project_rules(graph, select=chosen)
        findings.extend(_apply_noqa(project, {path: suppressed}))
    return sort_findings(findings)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.is_file():
            out.add(p)
        else:
            raise LintError(f"no such file or directory: {entry}")
    return sorted(out)


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``.

    Two passes share one parse: the per-file rules see each tree in
    isolation; the whole-program rules (SIM101+) see a
    :class:`~repro.devtools.graph.ProjectGraph` built from every parsed
    file, so seed flow across modules is visible.
    """
    chosen = resolve_selection(select, ignore)
    findings: list[Finding] = []
    parsed: list[tuple[str, ast.Module]] = []
    noqa: dict[str, dict[int, set[str] | None]] = {}
    for file in collect_files(paths):
        source = file.read_text(encoding="utf-8")
        per_file, tree, suppressed = _lint_one(source, str(file), chosen)
        findings.extend(per_file)
        if tree is not None:
            parsed.append((str(file), tree))
            noqa[str(file)] = suppressed
    if parsed and chosen & set(PROJECT_RULES):
        graph = ProjectGraph.build(parsed)
        findings.extend(_apply_noqa(run_project_rules(graph, select=chosen), noqa))
    return sort_findings(findings)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _split_ids(value: str) -> list[str]:
    return [part for part in re.split(r"[,\s]+", value) if part]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint options on ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        type=_split_ids,
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to run (default: all, or pyproject)",
    )
    parser.add_argument(
        "--ignore",
        type=_split_ids,
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--format",
        "--output-format",
        dest="format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text; github = Actions annotations)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule ID with its summary and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simulation-correctness linter for the repro codebase",
    )
    add_lint_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        combined: dict[str, str] = {
            **{rid: cls.summary for rid, cls in RULES.items()},
            **{rid: cls.summary for rid, cls in PROJECT_RULES.items()},
        }
        for rule_id in sorted(combined):
            print(f"{rule_id}  {combined[rule_id]}")
        return 0
    # CLI selection flags replace the pyproject defaults wholesale — mixing
    # a command-line --select with a configured ignore list surprises.
    if args.select is not None or args.ignore is not None:
        select, ignore = args.select, args.ignore
    else:
        config = load_config(Path(args.paths[0]).resolve() if args.paths else None)
        select, ignore = config.get("select"), config.get("ignore")
    try:
        findings = lint_paths(args.paths, select=select, ignore=ignore)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(format_findings(findings, fmt=args.format))
    except BrokenPipeError:
        # the reader (e.g. `| head`) went away; the exit code still stands.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
