"""Replay-divergence auditor: the runtime half of the determinism stack.

The static rules (SIM001–SIM106) prove the *code* has no known
nondeterminism pattern; this module tests the *behaviour*: run an
experiment several times with identical seeds and demand bit-identical
results.  Divergence between two identically-seeded replays is proof of
nondeterminism — an unseeded RNG, an order-unstable iteration, anything
the static pass missed.

Two observation channels, both installed process-wide for the duration
of a replay and removed afterwards:

* **event stream** — :func:`repro.sim.engine.set_event_hook` reports
  every executed engine event; each is folded into a *chained* digest
  (digest\\ :sub:`i` = H(digest\\ :sub:`i-1` ‖ event\\ :sub:`i`)) and the
  per-event running digests are kept.  Because a chained digest can
  never re-converge after a divergence, the first divergent event
  between two replays is found by **binary search over the stored
  prefix digests** — re-execution would be useless, since each run of a
  nondeterministic program is a fresh stream;
* **results** — :func:`repro.sim.metrics.set_result_observer` reports
  every finished :class:`~repro.sim.metrics.SimulationResult` from
  either backend, including the interior runs of cutoff searches that
  drivers never return; each folds to its
  :meth:`~repro.sim.metrics.SimulationResult.digest`.

A third check needs no replays at all: the same workload simulated on
the event engine and the fast kernels must produce the same waits
(host identities may legitimately differ on ties, so the comparison is
``allclose`` on wait arrays, not a bit-exact digest).

A fourth check targets the kernel tiers: when the certified compiled
tier (:mod:`repro.sim.compiled`) is importable, every ported kernel is
run on the same workload under ``kernel_tier("python")`` and
``kernel_tier("compiled")`` and the outputs must be **bit-identical**
(``np.array_equal``, not ``allclose`` — the ports replicate the python
arithmetic operation for operation, so nothing short of equality is
acceptable).  Without numba the check reports itself unavailable and
passes.

A fifth, optional check (``--workers N``) targets the parallel sweep
executor: the audited experiment is run once serially and once fanned
out over an ``N``-process pool, and the resulting rows must be
**identical** (NaN fields compare equal to NaN — ablation drivers emit
them legitimately).  This is the runtime enforcement of the guarantee
documented in :mod:`repro.experiments.parallel` and
``docs/PERFORMANCE.md``.

A sixth, optional check (``--sharded``) targets the sharded dispatch
engine (:mod:`repro.serve.shard`): the same seeded C90 stream is driven
through the single-process :class:`~repro.serve.DispatchServer` and a
2-shard SITA-routed :class:`~repro.serve.ShardedDispatchServer`, and
everything the ordered merge reconstructs — counters, the merged clock,
the global Jain index and the per-job host/start/completion columns —
must be **bit-identical**.  This is the determinism contract the
sharding chapter of ``docs/PERFORMANCE.md`` promises.

CLI::

    repro audit --experiment fig2_3 --replays 2 [--scale 0.1] [--seed N]
               [--workers 4] [--sharded]

Exit codes: **0** deterministic, **1** divergence found, **2** usage
error (unknown experiment).
"""

from __future__ import annotations

import argparse
import hashlib
import math
import struct
import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..experiments import ExperimentConfig, get_experiment, list_experiments, run_experiment
from ..sim.engine import set_event_hook
from ..sim.events import Event
from ..sim.metrics import SimulationResult, set_result_observer

__all__ = [
    "AuditError",
    "AuditReport",
    "CrossCheck",
    "Divergence",
    "ParallelCheck",
    "ReplayRecord",
    "ShardedCheck",
    "TierCheck",
    "add_audit_arguments",
    "audit_experiment",
    "check_parallel_equivalence",
    "cross_check_backends",
    "cross_check_sharded",
    "cross_check_tiers",
    "find_first_divergence",
    "main",
    "record_replay",
    "resolve_experiment_ids",
    "run_from_args",
]


class AuditError(Exception):
    """A usage error (unknown experiment) — CLI exit code 2."""


# ---------------------------------------------------------------------------
# recording one replay
# ---------------------------------------------------------------------------


def _summarize_arg(arg: object) -> str:
    """Compact, stable description of an event-callback argument."""
    if isinstance(arg, (bool, int, float, str)):
        return repr(arg)
    index = getattr(arg, "index", None)
    if isinstance(index, int):
        return f"{type(arg).__name__}#{index}"
    return type(arg).__name__


def describe_event(event: Event) -> str:
    """One line identifying an executed event — what the audit reports."""
    callback = event.callback
    name = getattr(callback, "__qualname__", None) or getattr(
        callback, "__name__", repr(callback)
    )
    args = ", ".join(_summarize_arg(a) for a in event.args)
    return f"t={event.time!r} seq={event.seq} {name}({args})"


@dataclass
class ReplayRecord:
    """Everything observed during one replay of an experiment.

    ``event_digests[i]`` is the chained digest *after* event ``i`` — 16
    bytes per event, enough to binary-search the first divergence
    against another replay without ever re-executing.
    """

    event_digests: list[bytes] = field(default_factory=list)
    event_descriptions: list[str] = field(default_factory=list)
    result_digests: list[str] = field(default_factory=list)
    result_names: list[str] = field(default_factory=list)
    _chain: bytes = b"\x00" * 16

    @property
    def n_events(self) -> int:
        return len(self.event_digests)

    @property
    def n_results(self) -> int:
        return len(self.result_digests)

    def final_digest(self) -> str:
        """Single fingerprint of the whole replay (events + results)."""
        h = hashlib.blake2b(self._chain, digest_size=16)
        for digest in self.result_digests:
            h.update(digest.encode())
        return h.hexdigest()

    # -- observers -------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        desc = describe_event(event)
        h = hashlib.blake2b(self._chain, digest_size=16)
        h.update(struct.pack("<dq", event.time, event.seq))
        h.update(desc.encode())
        self._chain = h.digest()
        self.event_digests.append(self._chain)
        self.event_descriptions.append(desc)

    def _on_result(self, result: SimulationResult) -> None:
        self.result_digests.append(result.digest())
        self.result_names.append(f"{result.policy_name}[n={result.n_jobs}]")


@contextmanager
def record_replay() -> Iterator[ReplayRecord]:
    """Install the audit observers for the duration of the ``with`` body."""
    record = ReplayRecord()
    previous_hook = set_event_hook(record._on_event)
    previous_observer = set_result_observer(record._on_result)
    try:
        yield record
    finally:
        set_event_hook(previous_hook)
        set_result_observer(previous_observer)


# ---------------------------------------------------------------------------
# comparing replays
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """The first observed difference between two identically-seeded replays."""

    #: ``event`` (stream content), ``event-count`` (one stream is a prefix
    #: of the other), ``result`` (a simulation digest differs) or
    #: ``result-count`` (different number of simulations ran).
    kind: str
    replay_a: int
    replay_b: int
    index: int
    detail_a: str
    detail_b: str

    def render(self) -> str:
        what = {
            "event": "first divergent event",
            "event-count": "event streams are prefix-equal but differ in length",
            "result": "first divergent simulation result",
            "result-count": "different number of simulation runs observed",
        }[self.kind]
        return (
            f"replay {self.replay_a} vs replay {self.replay_b}: {what} "
            f"at index {self.index}\n"
            f"  replay {self.replay_a}: {self.detail_a}\n"
            f"  replay {self.replay_b}: {self.detail_b}"
        )


def _first_unequal(a: list[bytes], b: list[bytes]) -> int:
    """Index of the first differing prefix digest (binary search).

    Chained digests diverge permanently: equality at ``i`` implies
    equality everywhere before ``i``, so "digests differ at ``i``" is a
    monotone predicate and the first divergence is a textbook bisection
    over the *stored* arrays.  (Bisecting by re-execution would be
    meaningless — a nondeterministic program produces a fresh stream
    every run.)
    """
    lo, hi = 0, min(len(a), len(b)) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] == b[mid]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def find_first_divergence(
    a: ReplayRecord, b: ReplayRecord, index_a: int = 0, index_b: int = 1
) -> Divergence | None:
    """Compare two replays; ``None`` means bit-identical observations."""
    common = min(a.n_events, b.n_events)
    if common and a.event_digests[common - 1] != b.event_digests[common - 1]:
        i = _first_unequal(a.event_digests, b.event_digests)
        return Divergence(
            kind="event",
            replay_a=index_a,
            replay_b=index_b,
            index=i,
            detail_a=a.event_descriptions[i],
            detail_b=b.event_descriptions[i],
        )
    if a.n_events != b.n_events:
        longer = a if a.n_events > b.n_events else b
        return Divergence(
            kind="event-count",
            replay_a=index_a,
            replay_b=index_b,
            index=common,
            detail_a=f"{a.n_events} events",
            detail_b=f"{b.n_events} events"
            + f" (extra: {longer.event_descriptions[common]})",
        )
    for i, (da, db) in enumerate(zip(a.result_digests, b.result_digests)):
        if da != db:
            return Divergence(
                kind="result",
                replay_a=index_a,
                replay_b=index_b,
                index=i,
                detail_a=f"{a.result_names[i]} digest {da}",
                detail_b=f"{b.result_names[i]} digest {db}",
            )
    if a.n_results != b.n_results:
        return Divergence(
            kind="result-count",
            replay_a=index_a,
            replay_b=index_b,
            index=min(a.n_results, b.n_results),
            detail_a=f"{a.n_results} simulation runs",
            detail_b=f"{b.n_results} simulation runs",
        )
    return None


# ---------------------------------------------------------------------------
# engine vs fast-path cross-check
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrossCheck:
    """Agreement of the event engine and the vectorised kernels."""

    policy_name: str
    n_jobs: int
    max_abs_deviation: float
    ok: bool

    def render(self) -> str:
        status = "agree" if self.ok else "DISAGREE"
        return (
            f"engine vs fast backends {status} on {self.policy_name} "
            f"({self.n_jobs} jobs, max wait deviation "
            f"{self.max_abs_deviation:.3e})"
        )


def cross_check_backends(
    seed: int, n_jobs: int = 2000, workload: str = "c90"
) -> CrossCheck:
    """Simulate one workload on both backends and compare the waits.

    Host *identities* may differ on exact ties (documented in
    :mod:`repro.sim.fast`), so the comparison is ``allclose`` on the
    per-job wait arrays rather than a bit-exact digest.
    """
    from ..core.policies import LeastWorkLeftPolicy
    from ..sim.runner import simulate
    from ..workloads.catalog import get_workload

    trace = get_workload(workload).make_trace(
        load=0.7, n_hosts=4, n_jobs=n_jobs, rng=seed
    )
    engine = simulate(
        trace, LeastWorkLeftPolicy(), n_hosts=4, rng=seed, backend="event"
    )
    fast = simulate(
        trace, LeastWorkLeftPolicy(), n_hosts=4, rng=seed, backend="fast"
    )
    deviation = float(np.max(np.abs(engine.wait_times - fast.wait_times)))
    ok = bool(
        np.allclose(engine.wait_times, fast.wait_times, rtol=1e-9, atol=1e-6)
    )
    return CrossCheck(
        policy_name=engine.policy_name,
        n_jobs=trace.n_jobs,
        max_abs_deviation=deviation,
        ok=ok,
    )


# ---------------------------------------------------------------------------
# python vs compiled kernel-tier cross-check
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TierCheck:
    """Bit-equality of the python and certified compiled kernel tiers.

    ``available=False`` (no numba / nothing certified) is a pass: the
    python tier is then the only tier, and there is nothing to compare.
    """

    n_jobs: int
    kernels: tuple[str, ...]
    available: bool
    first_mismatch: str | None

    @property
    def ok(self) -> bool:
        return self.first_mismatch is None

    def render(self) -> str:
        if not self.available:
            return (
                "python vs compiled kernel tiers: compiled tier "
                "unavailable, nothing to compare (python tier only)"
            )
        if self.ok:
            return (
                f"python and compiled kernel tiers are bit-identical on "
                f"{', '.join(self.kernels)} ({self.n_jobs} jobs)"
            )
        return (
            f"python vs compiled kernel tiers DISAGREE: {self.first_mismatch}"
        )


def cross_check_tiers(
    seed: int, n_jobs: int = 2000, workload: str = "c90"
) -> TierCheck:
    """Run every compiled-ported kernel on both tiers; demand bit-equality.

    Covers LWL (identical *and* heterogeneous hosts), Shortest-Queue,
    estimate-driven LWL and the batched SITA cutoff scan.  Waits, host
    assignments and scan scores must all satisfy ``np.array_equal`` —
    the compiled ports replicate the python arithmetic operation for
    operation, so any inequality is a porting bug.
    """
    from ..sim import fast
    from ..sim.compiled import compiled_available, kernel_tier
    from ..workloads.catalog import get_workload

    kernels = (
        "lwl_waits",
        "lwl_waits[hetero]",
        "shortest_queue_waits",
        "estimated_lwl_waits",
        "sita_scan",
    )
    if not compiled_available():
        return TierCheck(
            n_jobs=0, kernels=kernels, available=False, first_mismatch=None
        )
    trace = get_workload(workload).make_trace(
        load=0.7, n_hosts=4, n_jobs=n_jobs, rng=seed
    )
    t = trace.arrival_times - trace.arrival_times[0]
    s = trace.service_times
    est = s * np.random.default_rng(seed).uniform(0.5, 2.0, s.size)
    speeds = np.asarray([1.0, 1.0, 2.0, 0.5])
    candidates = np.quantile(s, [0.25, 0.5, 0.75])

    def run_all() -> dict[str, object]:
        return {
            "lwl_waits": fast.lwl_waits(t, s, 4),
            "lwl_waits[hetero]": fast.lwl_waits(t, s, 4, host_speeds=speeds),
            "shortest_queue_waits": fast.shortest_queue_waits(t, s, 4),
            "estimated_lwl_waits": fast.estimated_lwl_waits(t, s, est, 4),
            "sita_scan": fast.sita_scan(trace, candidates),
        }

    with kernel_tier("python"):
        python_out = run_all()
    with kernel_tier("compiled"):
        compiled_out = run_all()
    first_mismatch = None
    for name in kernels:
        a, b = python_out[name], compiled_out[name]
        if isinstance(a, fast.SitaScanResult):
            assert isinstance(b, fast.SitaScanResult)
            pairs = [
                ("values", a.values, b.values),
                ("short_slowdown", a.short_slowdown, b.short_slowdown),
                ("long_slowdown", a.long_slowdown, b.long_slowdown),
                ("gap", a.gap, b.gap),
                ("n_short", a.n_short, b.n_short),
            ]
        else:
            assert isinstance(a, tuple) and isinstance(b, tuple)
            pairs = [("waits", a[0], b[0]), ("hosts", a[1], b[1])]
        for label, x, y in pairs:
            if not np.array_equal(
                np.asarray(x), np.asarray(y), equal_nan=True
            ):
                first_mismatch = (
                    f"{name}.{label} differs (python vs compiled, "
                    f"seed {seed}, {trace.n_jobs} jobs)"
                )
                break
        if first_mismatch is not None:
            break
    return TierCheck(
        n_jobs=trace.n_jobs,
        kernels=kernels,
        available=True,
        first_mismatch=first_mismatch,
    )


# ---------------------------------------------------------------------------
# serial vs parallel sweep equivalence
# ---------------------------------------------------------------------------


def _row_values_equal(a: object, b: object) -> bool:
    """Equality where two NaNs compare equal (ablation rows carry NaN)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    return a == b


def _rows_equal(a: dict, b: dict) -> bool:
    return a.keys() == b.keys() and all(
        _row_values_equal(a[k], b[k]) for k in a
    )


@dataclass(frozen=True)
class ParallelCheck:
    """Agreement of a serial sweep and an N-worker parallel sweep."""

    workers: int
    n_rows: int
    first_mismatch: str | None

    @property
    def ok(self) -> bool:
        return self.first_mismatch is None

    def render(self) -> str:
        if self.ok:
            return (
                f"serial and {self.workers}-worker parallel sweeps agree "
                f"on all {self.n_rows} rows"
            )
        return (
            f"serial vs {self.workers}-worker parallel sweep DISAGREE: "
            f"{self.first_mismatch}"
        )


def check_parallel_equivalence(
    ids: list[str], config: ExperimentConfig, workers: int
) -> ParallelCheck:
    """Run every experiment in ``ids`` serially and with ``workers``
    processes; the rows must match exactly (NaN-tolerant, see
    :func:`_row_values_equal`)."""
    n_rows = 0
    for eid in ids:
        serial = run_experiment(eid, config)
        parallel = run_experiment(eid, config, workers=workers)
        if len(serial.rows) != len(parallel.rows):
            return ParallelCheck(
                workers=workers,
                n_rows=n_rows,
                first_mismatch=(
                    f"{eid}: {len(serial.rows)} serial rows vs "
                    f"{len(parallel.rows)} parallel rows"
                ),
            )
        for i, (sr, pr) in enumerate(zip(serial.rows, parallel.rows)):
            if not _rows_equal(sr, pr):
                return ParallelCheck(
                    workers=workers,
                    n_rows=n_rows,
                    first_mismatch=f"{eid} row {i}: serial {sr!r} != parallel {pr!r}",
                )
        n_rows += len(serial.rows)
    return ParallelCheck(workers=workers, n_rows=n_rows, first_mismatch=None)


# ---------------------------------------------------------------------------
# sharded vs unsharded dispatch equivalence
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedCheck:
    """Bit-identity of the sharded dispatcher against the unsharded one."""

    n_shards: int
    n_jobs: int
    first_mismatch: str | None

    @property
    def ok(self) -> bool:
        return self.first_mismatch is None

    def render(self) -> str:
        if self.ok:
            return (
                f"{self.n_shards}-shard SITA dispatch merges bit-identically "
                f"to the unsharded server over {self.n_jobs} jobs"
            )
        return (
            f"{self.n_shards}-shard vs unsharded dispatch DISAGREE: "
            f"{self.first_mismatch}"
        )


def cross_check_sharded(
    seed: int = 0, n_jobs: int = 1500, n_shards: int = 2
) -> ShardedCheck:
    """Drive one seeded C90 stream through both dispatcher shapes.

    The unsharded :class:`~repro.serve.DispatchServer` and an inline
    ``n_shards``-shard SITA-routed
    :class:`~repro.serve.ShardedDispatchServer` process the identical
    ``(arrival, size)`` stream; the merged counters, clock, global Jain
    index and per-job host/start/completion columns must be
    bit-identical (``np.array_equal``, not ``allclose`` — the merge
    reorders work, it never recomputes it).
    """
    from ..core.policies import SITAPolicy
    from ..serve import DispatchServer
    from ..serve.shard import ShardedDispatchServer
    from ..workloads.catalog import get_workload

    trace = get_workload("c90").make_trace(
        load=0.7, n_hosts=4, n_jobs=n_jobs, rng=seed
    )
    t0 = float(trace.arrival_times[0])
    jobs = [
        (float(a) - t0, float(s))
        for a, s in zip(trace.arrival_times, trace.service_times)
    ]
    sizes = np.array([s for _, s in jobs])
    cutoffs = [float(np.quantile(sizes, q)) for q in (0.25, 0.5, 0.75)]

    ref = DispatchServer(4, SITAPolicy(cutoffs, name="sita-audit"), seed=seed)
    reference = ref.run_stream(jobs, batch_size=256)
    sharded = ShardedDispatchServer(
        4,
        SITAPolicy(cutoffs, name="sita-audit"),
        n_shards=n_shards,
        router="sita",
        seed=seed,
        transport="inline",
    )
    with sharded:
        status = sharded.run_stream(jobs, batch_size=256)
        merged = sharded.merged_job_table()

    def scalar(label: str, got: object, want: object) -> str | None:
        if got == want:
            return None
        return f"{label}: sharded {got!r} != unsharded {want!r}"

    mismatch = (
        scalar("counters", status["counters"], reference["counters"])
        or scalar("clock", status["clock"], reference["clock"])
        or scalar(
            "jain_slowdown",
            status["jain_slowdown"],
            reference["jain_slowdown"],
        )
    )
    if mismatch is None and not all(status["invariant"].values()):
        mismatch = f"merge invariant violated: {status['invariant']!r}"
    if mismatch is None:
        table = ref.job_table()
        for column in ("host", "start", "completion"):
            if not np.array_equal(merged[column], table[column]):
                i = int(
                    np.flatnonzero(merged[column] != table[column])[0]
                )
                mismatch = (
                    f"job {i} {column}: sharded {merged[column][i]!r} != "
                    f"unsharded {table[column][i]!r}"
                )
                break
    return ShardedCheck(
        n_shards=n_shards, n_jobs=n_jobs, first_mismatch=mismatch
    )


# ---------------------------------------------------------------------------
# the audit itself
# ---------------------------------------------------------------------------


def resolve_experiment_ids(name: str) -> list[str]:
    """Experiment ids behind ``name``: a registered id, or a driver module.

    ``fig2`` resolves to itself; ``fig2_3`` (a module that registers
    ``fig2`` and ``fig3``) resolves to every experiment its module
    defines, so audits can target the natural file-level unit.
    """
    registered = [eid for eid, _ in list_experiments()]
    if name in registered:
        return [name]
    by_module = [
        eid
        for eid in registered
        if get_experiment(eid).__module__.rsplit(".", 1)[-1] == name
    ]
    if by_module:
        return sorted(by_module)
    known = ", ".join(registered)
    raise AuditError(f"unknown experiment {name!r} (known ids: {known})")


@dataclass
class AuditReport:
    """Outcome of a full audit run."""

    experiment: str
    experiment_ids: list[str]
    replays: int
    scale: float
    n_events: int
    n_results: int
    divergence: Divergence | None
    cross_check: CrossCheck | None
    parallel_check: ParallelCheck | None = None
    tier_check: TierCheck | None = None
    sharded_check: ShardedCheck | None = None

    @property
    def ok(self) -> bool:
        return (
            self.divergence is None
            and (self.cross_check is None or self.cross_check.ok)
            and (self.parallel_check is None or self.parallel_check.ok)
            and (self.tier_check is None or self.tier_check.ok)
            and (self.sharded_check is None or self.sharded_check.ok)
        )

    def render(self) -> str:
        ids = ", ".join(self.experiment_ids)
        lines = [
            f"audit {self.experiment} (ids: {ids}) — {self.replays} replays "
            f"at scale {self.scale:g}: {self.n_events} engine events, "
            f"{self.n_results} simulation runs observed per replay"
        ]
        if self.divergence is None:
            lines.append("replays are bit-identical")
        else:
            lines.append(self.divergence.render())
        if self.cross_check is not None:
            lines.append(self.cross_check.render())
        if self.tier_check is not None:
            lines.append(self.tier_check.render())
        if self.parallel_check is not None:
            lines.append(self.parallel_check.render())
        if self.sharded_check is not None:
            lines.append(self.sharded_check.render())
        lines.append("audit PASSED" if self.ok else "audit FAILED")
        return "\n".join(lines)


def audit_experiment(
    experiment: str,
    replays: int = 2,
    scale: float = 0.1,
    seed: int | None = None,
    cross_check: bool = True,
    workers: int | None = None,
    sharded: bool = False,
) -> AuditReport:
    """Run ``experiment`` ``replays`` times with identical seeds; compare.

    Every replay uses the same :class:`ExperimentConfig`, so any
    difference in the observed event stream or result digests is
    nondeterminism by construction.  The first difference is located by
    binary search over stored per-event digests and reported with both
    sides' event descriptions.
    """
    if replays < 2:
        raise AuditError(f"need at least 2 replays to compare, got {replays}")
    if workers is not None and workers < 2:
        raise AuditError(f"--workers needs at least 2 processes, got {workers}")
    ids = resolve_experiment_ids(experiment)
    config = ExperimentConfig(scale=scale)
    if seed is not None:
        config = config.with_(seed=seed)
    records: list[ReplayRecord] = []
    for _ in range(replays):
        with record_replay() as record:
            for eid in ids:
                run_experiment(eid, config)
        records.append(record)
    divergence = None
    for i in range(1, len(records)):
        divergence = find_first_divergence(records[0], records[i], 0, i)
        if divergence is not None:
            break
    check = cross_check_backends(seed=config.seed) if cross_check else None
    tier_check = cross_check_tiers(seed=config.seed) if cross_check else None
    par_check = (
        check_parallel_equivalence(ids, config, workers)
        if workers is not None
        else None
    )
    sharded_check = cross_check_sharded(seed=config.seed) if sharded else None
    return AuditReport(
        experiment=experiment,
        experiment_ids=ids,
        replays=replays,
        scale=scale,
        n_events=records[0].n_events,
        n_results=records[0].n_results,
        divergence=divergence,
        cross_check=check,
        parallel_check=par_check,
        tier_check=tier_check,
        sharded_check=sharded_check,
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def add_audit_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the audit options on ``parser`` (shared with ``repro audit``)."""
    parser.add_argument(
        "--experiment",
        required=True,
        help="experiment id (fig2) or driver module (fig2_3) to audit",
    )
    parser.add_argument(
        "--replays",
        type=int,
        default=2,
        help="identically-seeded replays to compare (default: 2)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="job-count multiplier for the replays (default: 0.1)",
    )
    parser.add_argument("--seed", type=int, default=None, help="base RNG seed")
    parser.add_argument(
        "--no-cross-check",
        action="store_true",
        help="skip the engine-vs-fast backend comparison",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "also run the audited experiments over an N-process pool and "
            "require the rows to match the serial run exactly"
        ),
    )
    parser.add_argument(
        "--sharded",
        action="store_true",
        help=(
            "also drive one seeded stream through the unsharded and the "
            "2-shard dispatcher and require a bit-identical merge"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro audit",
        description="replay-divergence determinism audit for experiments",
    )
    add_audit_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed audit invocation; returns the process exit code."""
    try:
        report = audit_experiment(
            args.experiment,
            replays=args.replays,
            scale=args.scale,
            seed=args.seed,
            cross_check=not args.no_cross_check,
            workers=args.workers,
            sharded=args.sharded,
        )
    except AuditError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
