"""Whole-program, flow-sensitive determinism rules (``SIM101`` …).

The per-file rules (SIM001–SIM007) catch local hazards; these rules run
on the :class:`~repro.devtools.graph.ProjectGraph` and reason about
*flow* — where seeds come from, which objects share an RNG stream, what
order data reaches a float accumulator or the event heap in.  Every rule
guards the same property: **bit-exact deterministic replay**, the ground
every cross-policy comparison in the paper stands on.

=========  ===========================================================
SIM101     Generator created without a seed reaching it from any caller
SIM102     one RNG stream shared across policies/hosts without spawn()
SIM103     set/dict iteration feeding event scheduling or float sums
SIM104     order-sensitive ``sum()`` over an unordered collection
SIM105     event-heap entries without the ``(time, seq)`` tie-breaker
SIM106     unordered parallel-map results consumed without re-ordering
=========  ===========================================================

Rationale and examples for each rule live in ``docs/DEVTOOLS.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .graph import (
    CallSite,
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    ProjectRule,
    register_project,
)
from .rules import _dotted, _snake_words, _terminal_name

__all__ = [
    "SharedStreamRule",
    "UnorderedIterationRule",
    "UnorderedReductionRule",
    "UnorderedParallelRule",
    "UnseededGeneratorRule",
    "HeapTieBreakRule",
]


# ---------------------------------------------------------------------------
# shared inference helpers
# ---------------------------------------------------------------------------

#: fully qualified RNG constructors whose seeding we track.
_RNG_CTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
    }
)
#: unresolved fallbacks (``from numpy.random import default_rng`` inside a
#: snippet the graph cannot resolve, or a project-local coercion wrapper).
_RNG_CTOR_TAILS = frozenset({"default_rng"})

#: parameter names that conventionally carry a Generator object.
_RNG_PARAM_WORDS = frozenset({"rng", "generator"})

#: loop axes whose iterations must not share one RNG stream.
_FANOUT_AXIS_WORDS = frozenset(
    {
        "policy", "policies", "host", "hosts", "rep", "reps", "replication",
        "replications", "replica", "replicas", "seed", "seeds", "worker",
        "workers", "shard", "shards", "trial", "trials", "backend", "backends",
    }
)

#: names that look like simulated-time values (superset of SIM003's list —
#: heap entries also use start/finish/departure vocabulary).
_TIMEY_WORDS = frozenset(
    {
        "now", "time", "times", "arrival", "arrivals", "completion",
        "completions", "cutoff", "cutoffs", "deadline", "epoch", "start",
        "finish", "departure", "depart", "when", "t",
    }
)

#: names that look like an integer tie-breaker / submission index.
_SEQ_WORDS = frozenset(
    {
        "seq", "sequence", "idx", "index", "indices", "counter", "count",
        "tie", "tiebreak", "serial", "id", "uid", "order", "rank",
        "i", "j", "k", "n",
    }
)

#: event-scheduling entry points (engine + host + heap surface).
_SCHEDULING_TAILS = frozenset({"schedule", "schedule_after", "heappush", "submit"})


def _words(name: str | None) -> set[str]:
    return _snake_words(name) if name else set()


def _is_timey(node: ast.AST) -> bool:
    """Heuristic: does this expression look like a simulated-time value?"""
    if isinstance(node, ast.BinOp):
        return _is_timey(node.left) or _is_timey(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_timey(node.operand)
    if isinstance(node, ast.Subscript):
        return _is_timey(node.value)
    if isinstance(node, ast.Call):
        if _terminal_name(node.func) in ("max", "min", "abs", "float"):
            return any(_is_timey(a) for a in node.args)
        return False
    return bool(_words(_terminal_name(node)) & _TIMEY_WORDS)


def _is_seqish(node: ast.AST) -> bool:
    """Heuristic: does this expression look like an integer tie-breaker?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp):
        return _is_seqish(node.operand)
    if isinstance(node, ast.Call) and _terminal_name(node.func) in ("int", "next", "len"):
        return True
    return bool(_words(_terminal_name(node)) & _SEQ_WORDS)


def _target_names(target: ast.AST) -> set[str]:
    """All plain names bound by an assignment/loop target."""
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _unit_nodes(unit: ast.AST, *, whole: bool) -> Iterator[ast.AST]:
    """Walk a code unit.

    ``whole=True`` walks everything below ``unit`` (used for function
    bodies, where nested defs share the enclosing scope's hazards);
    ``whole=False`` stops at nested function/class definitions (used for
    the module-level unit, whose functions are separate units).
    """
    if whole:
        yield from ast.walk(unit)
        return
    stack = list(ast.iter_child_nodes(unit))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _units(module: ModuleInfo) -> list[tuple[FunctionInfo | None, list[ast.AST]]]:
    """Code units of a module: each function/method, plus module level."""
    units: list[tuple[FunctionInfo | None, list[ast.AST]]] = [
        (fn, list(_unit_nodes(fn.node, whole=True)))
        for fn in module.functions.values()
    ]
    units.append((None, list(_unit_nodes(module.tree, whole=False))))
    return units


@dataclass
class _Scope:
    """Crude local type facts for one code unit."""

    set_names: set[str] = field(default_factory=set)
    dict_names: set[str] = field(default_factory=set)
    rng_names: set[str] = field(default_factory=set)
    numeric_names: set[str] = field(default_factory=set)


def _annotation_tail(annotation: ast.expr | None) -> str | None:
    if annotation is None:
        return None
    node: ast.AST = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    return _terminal_name(node)


def _is_rng_ctor_call(node: ast.AST, module: ModuleInfo) -> bool:
    if not isinstance(node, ast.Call):
        return False
    resolved = module.resolve(_dotted(node.func))
    if resolved in _RNG_CTORS or resolved == "numpy.random.Generator":
        return True
    return _terminal_name(node.func) in _RNG_CTOR_TAILS


def _is_spawn_call(node: ast.AST) -> bool:
    if isinstance(node, ast.Subscript):
        return _is_spawn_call(node.value)
    return isinstance(node, ast.Call) and _terminal_name(node.func) == "spawn"


def _build_scope(
    fn: FunctionInfo | None, nodes: Iterable[ast.AST], module: ModuleInfo
) -> _Scope:
    scope = _Scope()
    if fn is not None:
        for arg in fn.parameters():
            if (
                _words(arg.arg) & _RNG_PARAM_WORDS
                or _annotation_tail(arg.annotation) == "Generator"
            ):
                scope.rng_names.add(arg.arg)
    for node in nodes:
        if isinstance(node, ast.Assign):
            names: set[str] = set()
            for target in node.targets:
                names |= _target_names(target)
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            names = _target_names(node.target)
            value = node.value
        else:
            continue
        if isinstance(value, (ast.Set, ast.SetComp)):
            scope.set_names |= names
        elif isinstance(value, (ast.Dict, ast.DictComp)):
            scope.dict_names |= names
        elif isinstance(value, ast.Call):
            tail = _terminal_name(value.func)
            if tail in ("set", "frozenset"):
                scope.set_names |= names
            elif tail in ("dict", "defaultdict", "Counter", "OrderedDict"):
                scope.dict_names |= names
            elif _is_rng_ctor_call(value, module) or _is_spawn_call(value):
                scope.rng_names |= names
        elif isinstance(value, ast.Constant) and isinstance(value.value, (int, float)):
            if not isinstance(value.value, bool):
                scope.numeric_names |= names
    return scope


def _is_set_valued(
    node: ast.AST, scope: _Scope, module: ModuleInfo, graph: ProjectGraph, depth: int = 0
) -> bool:
    """Whether an expression evaluates to a set/frozenset (best effort)."""
    if depth > 4:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _terminal_name(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_valued(node.left, scope, module, graph, depth + 1) or (
            _is_set_valued(node.right, scope, module, graph, depth + 1)
        )
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = _terminal_name(node)
        if isinstance(node, ast.Name) and name in scope.set_names:
            return True
        const = graph.constant(module, _dotted(node))
        if const is not None:
            return _is_set_valued(const, scope, module, graph, depth + 1)
    return False


def _dict_iteration(node: ast.AST, scope: _Scope) -> bool:
    """Whether a ``for``-iterable expression walks a dict's entries."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in ("keys", "values", "items"):
            return True
    if isinstance(node, ast.Name):
        return node.id in scope.dict_names
    return isinstance(node, (ast.Dict, ast.DictComp))


# ---------------------------------------------------------------------------
# SIM101 — unseeded Generator creation (whole-program seed flow)
# ---------------------------------------------------------------------------


@register_project
class UnseededGeneratorRule(ProjectRule):
    """SIM101: every ``Generator`` must be reachable from an actual seed.

    ``np.random.default_rng()`` (or an explicit ``None``) seeds from OS
    entropy — every run draws a different stream and replay is impossible.
    The subtle variant is *transitive*: ``f(seed=None)`` forwarding into
    ``default_rng(seed)`` is fine only if some caller somewhere actually
    supplies the seed.  This rule walks the project call graph: a
    ``None``-default parameter that flows (possibly through several
    forwarding functions) into an RNG constructor is reported unless at
    least one call site feeds it a real value.  Functions with no callers
    in the linted tree (public API roots) are given the benefit of the
    doubt.
    """

    id = "SIM101"
    summary = "Generator creation that no caller ever seeds (OS entropy)"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    # -- local helpers ---------------------------------------------------

    def _rng_ctor_sites(self, module: ModuleInfo) -> list[tuple[FunctionInfo | None, ast.Call]]:
        out = []
        for fn, nodes in _units(module):
            for node in nodes:
                if _is_rng_ctor_call(node, module):
                    out.append((fn, node))
        return out

    @staticmethod
    def _seed_args(call: ast.Call) -> list[ast.expr]:
        args = list(call.args)
        args.extend(kw.value for kw in call.keywords if kw.arg in ("seed", "entropy"))
        return args

    @staticmethod
    def _param_default_is_none(fn: FunctionInfo, name: str) -> bool:
        default = fn.default_of(name)
        return (
            default is not None
            and isinstance(default, ast.Constant)
            and default.value is None
        )

    def _bound_expr(self, site: CallSite, fn: FunctionInfo, param: str) -> ast.expr | None:
        """The expression a call site binds to ``param`` of ``fn``."""
        call = site.node
        if any(isinstance(a, ast.Starred) for a in call.args) or any(
            kw.arg is None for kw in call.keywords
        ):
            return call  # *args/**kwargs: assume it feeds (optimistic)
        for kw in call.keywords:
            if kw.arg == param:
                return kw.value
        positional = [a.arg for a in fn.node.args.posonlyargs + fn.node.args.args]
        try:
            index = positional.index(param)
        except ValueError:
            return None
        if index < len(call.args):
            return call.args[index]
        return None

    def _caller_of(self, site: CallSite) -> FunctionInfo | None:
        """The function whose body contains ``site`` (best effort)."""
        for fn in site.module.functions.values():
            for node in ast.walk(fn.node):
                if node is site.node:
                    return fn
        return None

    def check(self) -> None:
        # Pass 1: direct unseeded constructions + seed-parameter roots.
        seed_params: set[tuple[str, str]] = set()  # (function fqname, param)
        param_sites: dict[tuple[str, str], tuple[ModuleInfo, FunctionInfo]] = {}
        for module in self.modules():
            for fn, call in self._rng_ctor_sites(module):
                args = self._seed_args(call)
                if not args:
                    self.report(
                        module,
                        call,
                        "Generator created with no seed: every run draws fresh "
                        "OS entropy and replay is impossible — pass a seed, a "
                        "SeedSequence, or a spawned child stream",
                    )
                    continue
                for arg in args:
                    if isinstance(arg, ast.Constant) and arg.value is None:
                        self.report(
                            module,
                            call,
                            "Generator explicitly seeded with None (OS entropy); "
                            "pass a real seed or a spawned child stream",
                        )
                    elif (
                        isinstance(arg, ast.Name)
                        and fn is not None
                        and not fn.is_method
                        and self._param_default_is_none(fn, arg.id)
                    ):
                        key = (fn.fqname, arg.id)
                        seed_params.add(key)
                        param_sites[key] = (module, fn)

        # Pass 2: discover forwarding seed parameters (fixpoint).  A
        # None-default parameter passed into a known seed parameter of
        # another project function is itself a seed parameter.
        changed = True
        while changed:
            changed = False
            for fq, param in list(seed_params):
                fn = self.graph.function(fq)
                if fn is None:
                    continue
                for site in self.graph.call_sites(fq):
                    caller = self._caller_of(site)
                    if caller is None or caller.is_method:
                        continue
                    expr = self._bound_expr(site, fn, param)
                    if (
                        isinstance(expr, ast.Name)
                        and self._param_default_is_none(caller, expr.id)
                    ):
                        key = (caller.fqname, expr.id)
                        if key not in seed_params:
                            seed_params.add(key)
                            param_sites[key] = (site.module, caller)
                            changed = True

        # Pass 3: fedness.  A seed parameter is FED when some call site
        # supplies a concrete value — directly, or via a parameter that is
        # itself fed.  Functions nobody calls in the linted tree are
        # treated as fed (their callers are outside our view).
        fed: set[tuple[str, str]] = set()
        pending: dict[tuple[str, str], list[tuple[str, str]]] = {}
        for key in seed_params:
            fq, param = key
            fn = self.graph.function(fq)
            sites = self.graph.call_sites(fq)
            if fn is None or not sites:
                fed.add(key)
                continue
            depends: list[tuple[str, str]] = []
            for site in sites:
                expr = self._bound_expr(site, fn, param)
                if expr is None or (
                    isinstance(expr, ast.Constant) and expr.value is None
                ):
                    continue  # omitted / explicit None: does not feed
                caller = self._caller_of(site)
                if (
                    isinstance(expr, ast.Name)
                    and caller is not None
                    and not caller.is_method
                    and self._param_default_is_none(caller, expr.id)
                ):
                    depends.append((caller.fqname, expr.id))
                else:
                    fed.add(key)
                    break
            else:
                pending[key] = depends
        changed = True
        while changed:
            changed = False
            for key, depends in pending.items():
                if key not in fed and any(d in fed or d not in seed_params for d in depends):
                    fed.add(key)
                    changed = True

        for key in sorted(seed_params - fed):
            module, fn = param_sites[key]
            _, param = key
            self.report(
                module,
                fn.node,
                f"seed parameter `{param}` of `{fn.qualname}` defaults to None "
                "and flows into a Generator constructor, but no call site in "
                "the project ever supplies it — every run draws fresh OS "
                "entropy; thread a seed through, or drop the None default",
            )


# ---------------------------------------------------------------------------
# SIM102 — one RNG stream shared across policies/hosts
# ---------------------------------------------------------------------------


@register_project
class SharedStreamRule(ProjectRule):
    """SIM102: fan out RNG streams with ``Generator.spawn``, don't share.

    Handing the *same* Generator object to every policy (or host, or
    replication) in a sweep makes each one's draws depend on how many the
    previous consumer took — reordering the sweep, or adding a policy,
    silently changes every other policy's workload.  The fix is explicit
    fan-out: ``children = rng.spawn(n)`` and one independent child per
    consumer.  The rule flags an RNG-typed name created *outside* a
    policy/host/replication-axis loop but consumed inside it.
    """

    id = "SIM102"
    summary = "RNG object shared across a policy/host/replication loop; spawn"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    @staticmethod
    def _axis_loop(node: ast.For) -> bool:
        names = _target_names(node.target)
        iter_name = _terminal_name(node.iter)
        if iter_name:
            names.add(iter_name)
        words: set[str] = set()
        for name in names:
            words |= _words(name)
        return bool(words & _FANOUT_AXIS_WORDS)

    def _check_unit(
        self, module: ModuleInfo, fn: FunctionInfo | None, nodes: list[ast.AST]
    ) -> None:
        scope = _build_scope(fn, nodes, module)
        if not scope.rng_names:
            return
        for node in nodes:
            if not isinstance(node, ast.For) or not self._axis_loop(node):
                continue
            fresh: set[str] = set(_target_names(node.target))
            # the loop header is the fan-out site itself (``zip(policies,
            # rng.spawn(n))``) — only the body consumes streams.
            header = set(map(id, ast.walk(node.iter)))
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    value_ok = _is_rng_ctor_call(sub.value, module) or _is_spawn_call(
                        sub.value
                    )
                    if value_ok:
                        for target in sub.targets:
                            fresh |= _target_names(target)
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call) or id(sub) in header:
                    continue
                if _terminal_name(sub.func) == "spawn":
                    continue
                shared = [
                    arg.id
                    for arg in [*sub.args, *(kw.value for kw in sub.keywords)]
                    if isinstance(arg, ast.Name)
                    and arg.id in scope.rng_names
                    and arg.id not in fresh
                ]
                receiver = (
                    sub.func.value
                    if isinstance(sub.func, ast.Attribute)
                    else None
                )
                if (
                    not shared
                    and isinstance(receiver, ast.Name)
                    and receiver.id in scope.rng_names
                    and receiver.id not in fresh
                ):
                    shared = [receiver.id]
                for name in shared:
                    self.report(
                        module,
                        sub,
                        f"RNG `{name}` is created outside this loop but consumed "
                        "per iteration: every policy/host shares one stream and "
                        "each one's draws depend on the others — fan out with "
                        f"`{name}.spawn(n)` and give each iteration its own child",
                    )

    def check(self) -> None:
        for module in self.modules():
            for fn, nodes in _units(module):
                self._check_unit(module, fn, nodes)


# ---------------------------------------------------------------------------
# SIM103 — set/dict iteration feeding scheduling or float accumulation
# ---------------------------------------------------------------------------


@register_project
class UnorderedIterationRule(ProjectRule):
    """SIM103: unordered iteration must not drive order-sensitive sinks.

    Set iteration order depends on ``PYTHONHASHSEED`` and insertion
    history; feeding it into ``Simulator.schedule``/``heappush`` (event
    creation order fixes the ``seq`` tie-breaker) or a float accumulator
    (addition is not associative) makes two identically-seeded runs
    diverge.  Dict iteration is insertion-ordered but still flagged when
    it schedules events, because the insertion order of a dict built
    across the run is itself easy to perturb.  Iterate ``sorted(...)``.
    """

    id = "SIM103"
    summary = "set/dict iteration feeds event scheduling or float accumulation"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    @staticmethod
    def _loop_triggers(node: ast.For, scope: _Scope) -> tuple[bool, ast.AST | None]:
        """(schedules, accumulation-node) found in the loop body."""
        schedules = False
        accumulates: ast.AST | None = None
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                if _terminal_name(sub.func) in _SCHEDULING_TAILS:
                    schedules = True
            elif isinstance(sub, ast.AugAssign) and isinstance(sub.op, ast.Add):
                if (
                    isinstance(sub.target, ast.Name)
                    and sub.target.id in scope.numeric_names
                ):
                    accumulates = sub
        return schedules, accumulates

    def check(self) -> None:
        for module in self.modules():
            for fn, nodes in _units(module):
                scope = _build_scope(fn, nodes, module)
                for node in nodes:
                    if not isinstance(node, ast.For):
                        continue
                    schedules, accumulates = self._loop_triggers(node, scope)
                    if not schedules and accumulates is None:
                        continue
                    if _is_set_valued(node.iter, scope, module, self.graph):
                        sink = (
                            "event scheduling"
                            if schedules
                            else "a float accumulation"
                        )
                        self.report(
                            module,
                            node,
                            f"iterating a set feeds {sink}: set order varies "
                            "with hashing and insertion history, so replays "
                            "diverge — iterate sorted(...) instead",
                        )
                    elif schedules and _dict_iteration(node.iter, scope):
                        self.report(
                            module,
                            node,
                            "iterating a dict feeds event scheduling: the "
                            "event seq tie-breaker inherits the dict's "
                            "insertion history — iterate sorted(...) for a "
                            "replay-stable order",
                        )


# ---------------------------------------------------------------------------
# SIM104 — order-sensitive float reduction over an unordered collection
# ---------------------------------------------------------------------------


@register_project
class UnorderedReductionRule(ProjectRule):
    """SIM104: ``sum()`` over a set has no defined order.

    Float addition is not associative; summing an unordered collection
    gives answers that differ in the last bits between runs — invisible
    in one result, fatal when two replays are compared bit-exactly or a
    cutoff search brackets on the difference.  Use ``sum(sorted(xs))``
    or ``math.fsum`` (exact, order-independent).
    """

    id = "SIM104"
    summary = "sum() over a set/unordered collection; sort first or use fsum"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_subpackage("sim", "core", "analysis", "experiments")

    def check(self) -> None:
        for module in self.modules():
            for fn, nodes in _units(module):
                scope = _build_scope(fn, nodes, module)
                for node in nodes:
                    if not isinstance(node, ast.Call):
                        continue
                    if not (
                        isinstance(node.func, ast.Name) and node.func.id == "sum"
                    ):
                        continue
                    if not node.args:
                        continue
                    arg = node.args[0]
                    unordered = _is_set_valued(arg, scope, module, self.graph)
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                        unordered = any(
                            _is_set_valued(gen.iter, scope, module, self.graph)
                            for gen in arg.generators
                        )
                    if unordered:
                        self.report(
                            module,
                            node,
                            "sum() over a set: float addition is order-"
                            "sensitive and set order is not reproducible — "
                            "sum(sorted(...)) or math.fsum(...) instead",
                        )


# ---------------------------------------------------------------------------
# SIM105 — event-heap entries need the (time, seq) tie-breaker
# ---------------------------------------------------------------------------


@register_project
class HeapTieBreakRule(ProjectRule):
    """SIM105: simultaneous events must be ordered by an explicit seq.

    The engine's contract (:mod:`repro.sim.events`) is that heap entries
    order by ``(time, seq)``: equal times fall back to insertion order,
    never to memory layout or payload comparison.  A heap entry that is a
    bare time, a 1-tuple, or a ``(time, other-float)`` pair — or a class
    whose ``__lt__``/``order=True`` compares only time-like fields —
    breaks ties arbitrarily, and which event fires first then varies
    between replays.
    """

    id = "SIM105"
    summary = "heap entry / event ordering without an integer seq tie-breaker"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    def _check_heappush(self, module: ModuleInfo, node: ast.Call) -> None:
        resolved = module.resolve(_dotted(node.func))
        if resolved != "heapq.heappush" and _terminal_name(node.func) != "heappush":
            return
        if len(node.args) < 2:
            return
        item = node.args[1]
        if isinstance(item, (ast.Name, ast.Attribute)) and _is_timey(item):
            self.report(
                module,
                node,
                "pushing a bare time onto a heap: simultaneous entries "
                "tie-break arbitrarily — push (time, seq, payload) with a "
                "monotone integer seq",
            )
            return
        if not isinstance(item, ast.Tuple):
            return
        elts = item.elts
        if not elts or not _is_timey(elts[0]):
            return
        if len(elts) == 1:
            self.report(
                module,
                node,
                "heap entry (time,) has no tie-breaker for simultaneous "
                "events — push (time, seq) with a monotone integer seq",
            )
        elif not any(_is_seqish(e) for e in elts[1:]):
            self.report(
                module,
                node,
                "heap entry orders by time then by payload comparison; equal "
                "times tie-break on unrelated fields (or raise) — make the "
                "second element a monotone integer seq",
            )

    @staticmethod
    def _compared_fields(cls: ast.ClassDef) -> list[str]:
        """Field names an ``order=True`` dataclass compares, in order."""
        fields = []
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            value = stmt.value
            if isinstance(value, ast.Call) and _terminal_name(value.func) == "field":
                if any(
                    kw.arg == "compare"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in value.keywords
                ):
                    continue
            fields.append(stmt.target.id)
        return fields

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef) -> None:
        for deco in cls.decorator_list:
            is_dc = _terminal_name(deco if not isinstance(deco, ast.Call) else deco.func)
            if is_dc == "dataclass" and isinstance(deco, ast.Call):
                ordered = any(
                    kw.arg == "order"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in deco.keywords
                )
                if ordered:
                    fields = self._compared_fields(cls)
                    if (
                        fields
                        and _words(fields[0]) & _TIMEY_WORDS
                        and not any(_words(f) & _SEQ_WORDS for f in fields[1:])
                    ):
                        self.report(
                            module,
                            cls,
                            f"dataclass(order=True) `{cls.name}` compares by "
                            f"`{fields[0]}` with no integer seq field: "
                            "simultaneous instances tie-break on unrelated "
                            "fields — add a monotone seq as the second "
                            "compared field",
                        )
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__lt__":
                attrs = {
                    sub.attr
                    for sub in ast.walk(stmt)
                    if isinstance(sub, ast.Attribute)
                }
                timey = any(_words(a) & _TIMEY_WORDS for a in attrs)
                seqish = any(_words(a) & _SEQ_WORDS for a in attrs)
                if timey and not seqish:
                    self.report(
                        module,
                        stmt,
                        f"`{cls.name}.__lt__` compares only time-like fields; "
                        "simultaneous instances have no deterministic order — "
                        "compare (time, seq) with a monotone integer seq",
                    )

    def check(self) -> None:
        for module in self.modules():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    self._check_heappush(module, node)
                elif isinstance(node, ast.ClassDef):
                    self._check_class(module, node)


# ---------------------------------------------------------------------------
# SIM106 — unordered parallel-map results consumed without re-ordering
# ---------------------------------------------------------------------------


@register_project
class UnorderedParallelRule(ProjectRule):
    """SIM106: completion order is not submission order.

    ``Pool.imap_unordered`` and ``concurrent.futures.as_completed`` yield
    results in *completion* order — a property of machine load, not of
    the inputs — so folding them straight into a list or accumulator
    bakes scheduler noise into the result.  Restore submission order
    first: carry an index and write into ``results[i]``, sort the
    collected pairs, or use the order-preserving ``map``/``imap``.
    """

    id = "SIM106"
    summary = "imap_unordered/as_completed results used without order restoration"

    _UNORDERED_TAILS = frozenset({"imap_unordered", "as_completed"})

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    @staticmethod
    def _restores_order(loop: ast.For) -> bool:
        """An indexed store inside the loop restores submission order."""
        for sub in ast.walk(loop):
            if isinstance(sub, ast.Assign) and any(
                isinstance(t, ast.Subscript) for t in sub.targets
            ):
                return True
        return False

    def check(self) -> None:
        for module in self.modules():
            parents: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(module.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if _terminal_name(node.func) not in self._UNORDERED_TAILS:
                    continue
                parent = parents.get(node)
                if isinstance(parent, ast.Call) and _terminal_name(parent.func) in (
                    "sorted",
                    "dict",
                ):
                    continue  # explicit re-ordering / keyed collection
                if isinstance(parent, ast.For) and parent.iter is node:
                    if self._restores_order(parent):
                        continue
                    self.report(
                        module,
                        parent,
                        "results are consumed in completion order (machine-"
                        "load dependent): write each result into its "
                        "submission slot (results[i] = ...) or sort before "
                        "folding",
                    )
                    continue
                self.report(
                    module,
                    node,
                    "unordered parallel results flow on without order "
                    "restoration: completion order varies run to run — sort "
                    "by submission index (or use the order-preserving map) "
                    "before consuming",
                )
