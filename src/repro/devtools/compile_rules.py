"""Compile-readiness rules SIM301–SIM308 (the nopython certifier).

The compiled kernel tier (:mod:`repro.sim.compiled`) runs hot-loop
recursions under ``numba.njit``.  A kernel is only allowed into that
tier when its body is *provably* nopython-safe — the same
lint-before-trust discipline the devtools layer applies to seeds
(SIM101+) and array ABIs (SIM201+), extended to compilability:

========  ==========================================================
SIM301    object-mode constructs (dict/str/closure/generator/
          ``**kwargs``) in a nopython kernel body
SIM302    dtype-unstable rebinding vs the declared contract dtypes
SIM303    NumPy API surface Numba rejects (``out=``/``kind=`` keyword
          forms, list-literal fancy-index writes, array growth in
          loops)
SIM304    hidden allocation inside the hot loop
SIM305    reflected-list / mutable-global capture
SIM306    call-out to a function outside the certified closure
          (fixpoint over the project graph)
SIM307    branch-dependent return dtype/shape vs the contract
SIM308    Python ``int`` overflow hazards vs 64-bit lanes
========  ==========================================================

Scope: **only** functions whose ``@kernel_contract`` declares
``nopython=True``.  The pure-NumPy kernels in :mod:`repro.sim.fast`
use Python-level conveniences freely; these rules never look at them.

Certification is whole-closure: a kernel is *certified* when its own
body passes SIM301–SIM305 and SIM307–SIM308 **and** every project
function it calls is itself certified (SIM306 runs this to a fixpoint,
so decertifying one helper decertifies its whole dependency cone).
The certified set is serialised into a committed manifest
(``src/repro/sim/compiled_manifest.json``)::

    python -m repro.devtools.compile_rules --write-manifest
    python -m repro.devtools.compile_rules --check   # CI freshness gate

:mod:`repro.sim.compiled` reads the manifest at import and registers a
compiled kernel only when its fully-qualified name is listed — an
uncertified kernel silently stays on the python tier.

Every verdict is conservative in the usual linter direction: unknown
facts never report.  Rules whose positive findings provably break
``numba.njit`` compilation set ``compile_breaking = True``; the
differential test suite asserts that static verdict against the real
compiler on every fixture.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, ClassVar, Iterator, Sequence

from .contracts import PROFILES, StaticContract, contract_index, _unit_facts
from .findings import Finding
from .graph import FunctionInfo, ModuleInfo, ProjectGraph, ProjectRule
from .rules import _dotted, _terminal_name

__all__ = [
    "COMPILE_RULES",
    "KernelCertification",
    "certification",
    "certified_kernels",
    "manifest_payload",
    "register_compile",
    "run_compile_rules",
    "main",
]

#: registry of compile-readiness rules, ``id`` → class.
COMPILE_RULES: dict[str, type["CompileRule"]] = {}

#: default manifest location (relative to the repository root).
DEFAULT_MANIFEST = Path("src/repro/sim/compiled_manifest.json")

MANIFEST_SCHEMA_VERSION = 1

#: builtins Numba supports that kernels may call freely.
_SAFE_BUILTINS = frozenset(
    {
        "abs", "bool", "divmod", "enumerate", "float", "int", "len",
        "max", "min", "range", "round", "zip",
    }
)

#: module prefixes whose functions Numba provides natively.
_SAFE_MODULE_PREFIXES = ("numpy.", "math.", "numba.")

#: numpy constructors that allocate a fresh array (SIM304's loop check).
_ALLOC_CTORS = frozenset(
    {
        "empty", "zeros", "ones", "full", "arange", "linspace", "array",
        "asarray", "ascontiguousarray", "empty_like", "zeros_like",
        "ones_like", "full_like",
    }
)

#: allocating array *methods* (on any receiver) for the loop check.
_ALLOC_METHODS = frozenset({"astype", "copy"})

#: numpy keyword arguments Numba's overloads reject.
_REJECTED_NUMPY_KWARGS = frozenset({"out", "kind", "where", "casting"})

#: numpy calls that grow an array (quadratic when placed in a loop).
_GROWTH_CALLS = frozenset({"append", "concatenate", "hstack", "vstack", "stack"})

_INT64_MAX = 2**63 - 1


# ---------------------------------------------------------------------------
# certification results (memoised on the graph)
# ---------------------------------------------------------------------------


@dataclass
class KernelCertification:
    """The compile-readiness verdict for one ``nopython=True`` kernel."""

    contract: StaticContract
    findings: list[Finding] = field(default_factory=list)

    @property
    def certified(self) -> bool:
        return not self.findings


def _finding(
    contract: StaticContract, node: ast.AST, rule_id: str, message: str
) -> Finding:
    return Finding(
        path=contract.fn.module.path,
        line=getattr(node, "lineno", contract.fn.node.lineno),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule_id,
        message=message,
    )


def _body_walk(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Every node in the function *body* (the ``def`` itself excluded)."""
    for stmt in getattr(fn_node, "body", []):
        yield from ast.walk(stmt)


def _parent_map(fn_node: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for stmt in getattr(fn_node, "body", []):
        for parent in ast.walk(stmt):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
    return parents


def _loop_bodies(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Every node nested under a ``for``/``while`` in the body."""
    for node in _body_walk(fn_node):
        if isinstance(node, (ast.For, ast.While)):
            for stmt in node.body + node.orelse:
                yield from ast.walk(stmt)


def _resolved_callee(module: ModuleInfo, call: ast.Call) -> str | None:
    """Fully-qualified callee of ``call`` as seen from ``module``.

    ``None`` when the callee is not statically resolvable — a method
    call on a local value, a call through a variable — which the rules
    treat as safe (conservative: unknown never reports).
    """
    dotted = _dotted(call.func)
    if not dotted:
        return None
    head = dotted[0]
    if len(dotted) > 1 and head not in module.imports and not (
        head in module.functions or head in module.classes or head in module.constants
    ):
        return None  # attribute on a local value: an array/scalar method
    return module.resolve(dotted)


def _is_numpy_call(module: ModuleInfo, call: ast.Call) -> bool:
    fq = _resolved_callee(module, call)
    return fq is not None and fq.startswith("numpy.")


def _store_names(fn_node: ast.AST) -> set[str]:
    """Every name bound anywhere in the body (assignments, loop targets)."""
    out: set[str] = set()
    for node in _body_walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
    return out


def _param_names(fn: FunctionInfo) -> list[str]:
    a = fn.node.args
    return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]


# ---------------------------------------------------------------------------
# per-kernel body checks (SIM301–SIM305, SIM307, SIM308)
# ---------------------------------------------------------------------------


def _check_object_mode(
    graph: ProjectGraph, contract: StaticContract
) -> list[Finding]:
    """SIM301 — constructs that force Numba's object mode (or fail typing)."""
    fn_node = contract.fn.node
    out: list[Finding] = []

    def report(node: ast.AST, what: str) -> None:
        out.append(
            _finding(
                contract,
                node,
                "SIM301",
                f"nopython kernel {contract.fn.qualname} uses {what}; "
                "object-mode constructs cannot compile under njit",
            )
        )

    args = getattr(fn_node, "args", None)
    if args is not None and (args.vararg or args.kwarg):
        report(fn_node, "*args/**kwargs in its signature")
    for node in _body_walk(fn_node):
        if isinstance(node, (ast.Dict, ast.DictComp)):
            report(node, "a dict")
        elif isinstance(node, (ast.Set, ast.SetComp)):
            report(node, "a set")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            report(node, "a closure")
        elif isinstance(node, (ast.Yield, ast.YieldFrom, ast.GeneratorExp)):
            report(node, "a generator")
        elif isinstance(node, ast.JoinedStr):
            report(node, "an f-string")
        elif isinstance(node, (ast.Await, ast.With, ast.AsyncWith)):
            report(node, "a context/await construct")
        elif isinstance(node, ast.Call) and _terminal_name(node.func) == "format":
            report(node, "str.format")
    return out


def _check_dtype_stability(
    graph: ProjectGraph, contract: StaticContract
) -> list[Finding]:
    """SIM302 — a declared-dtype name rebound to a different known dtype."""
    module = contract.fn.module
    facts = _unit_facts(graph, module, contract.fn)
    out: list[Finding] = []
    for node in _body_walk(contract.fn.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        declared = contract.dtype_names(target.id)
        if not declared:
            continue
        fact = facts.of_expr(node.value)
        if fact is not None and fact.dtype is not None and fact.dtype not in declared:
            out.append(
                _finding(
                    contract,
                    node,
                    "SIM302",
                    f"{contract.fn.qualname} rebinds {target.id} to dtype "
                    f"{fact.dtype} but the contract declares "
                    f"{'/'.join(declared)}; promotion drift changes the "
                    "compiled kernel's lane type",
                )
            )
    return out


def _check_numpy_surface(
    graph: ProjectGraph, contract: StaticContract
) -> list[Finding]:
    """SIM303 — NumPy forms Numba's overloads reject."""
    module = contract.fn.module
    fn_node = contract.fn.node
    out: list[Finding] = []
    for node in _body_walk(fn_node):
        if isinstance(node, ast.Call) and _is_numpy_call(module, node):
            for kw in node.keywords:
                if kw.arg in _REJECTED_NUMPY_KWARGS:
                    out.append(
                        _finding(
                            contract,
                            node,
                            "SIM303",
                            f"{contract.fn.qualname} passes {kw.arg}= to "
                            f"np.{_terminal_name(node.func)}; numba's "
                            "overload rejects that keyword — write the "
                            "loop explicitly instead",
                        )
                    )
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.slice, ast.List
                ):
                    out.append(
                        _finding(
                            contract,
                            target,
                            "SIM303",
                            f"{contract.fn.qualname} writes through a "
                            "list-literal fancy index; reflected-list "
                            "indices do not compile — use a slice or an "
                            "explicit loop",
                        )
                    )
    for node in _loop_bodies(fn_node):
        if (
            isinstance(node, ast.Call)
            and _is_numpy_call(module, node)
            and _terminal_name(node.func) in _GROWTH_CALLS
        ):
            out.append(
                _finding(
                    contract,
                    node,
                    "SIM303",
                    f"{contract.fn.qualname} grows an array with "
                    f"np.{_terminal_name(node.func)} inside a loop; "
                    "preallocate before the loop",
                )
            )
    return out


def _check_loop_allocation(
    graph: ProjectGraph, contract: StaticContract
) -> list[Finding]:
    """SIM304 — fresh-array allocation inside the hot loop."""
    module = contract.fn.module
    out: list[Finding] = []
    for node in _loop_bodies(contract.fn.node):
        if not isinstance(node, ast.Call):
            continue
        tail = _terminal_name(node.func)
        allocates = (
            tail in _ALLOC_CTORS and _is_numpy_call(module, node)
        ) or (isinstance(node.func, ast.Attribute) and tail in _ALLOC_METHODS)
        if allocates:
            out.append(
                _finding(
                    contract,
                    node,
                    "SIM304",
                    f"{contract.fn.qualname} allocates ({tail}) inside "
                    "its hot loop; hoist the buffer out of the loop",
                )
            )
    return out


def _check_reflection(
    graph: ProjectGraph, contract: StaticContract
) -> list[Finding]:
    """SIM305 — reflected-list literals and mutable-global capture."""
    module = contract.fn.module
    fn_node = contract.fn.node
    out: list[Finding] = []
    parents = _parent_map(fn_node)
    for node in _body_walk(fn_node):
        if isinstance(node, ast.List):
            # climb through nested literals to the consuming expression
            anchor: ast.AST = node
            while isinstance(parents.get(id(anchor)), (ast.List, ast.Tuple)):
                anchor = parents[id(anchor)]
            consumer = parents.get(id(anchor))
            if (
                isinstance(consumer, ast.Call)
                and _terminal_name(consumer.func)
                in ("array", "asarray", "ascontiguousarray")
                and anchor in consumer.args
            ):
                continue  # np.array([...]) literal payload compiles fine
            out.append(
                _finding(
                    contract,
                    node,
                    "SIM305",
                    f"{contract.fn.qualname} builds a Python list; "
                    "reflected lists are deprecated under njit — use a "
                    "NumPy buffer",
                )
            )
    local = set(_param_names(contract.fn)) | _store_names(fn_node)
    flagged: set[str] = set()
    for node in _body_walk(fn_node):
        if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
            continue
        name = node.id
        if name in local or name in flagged:
            continue
        const = module.constants.get(name)
        if isinstance(const, (ast.List, ast.Dict, ast.Set, ast.ListComp)):
            flagged.add(name)
            out.append(
                _finding(
                    contract,
                    node,
                    "SIM305",
                    f"{contract.fn.qualname} captures mutable module "
                    f"global {name}; globals are frozen at compile time "
                    "and list/dict globals do not type — pass state as "
                    "an array argument",
                )
            )
    return out


def _check_return_stability(
    graph: ProjectGraph, contract: StaticContract
) -> list[Finding]:
    """SIM307 — return dtype/shape varies by branch or defies the contract."""
    module = contract.fn.module
    facts = _unit_facts(graph, module, contract.fn)
    declared = contract.dtype_names("return")
    declared_shape = contract.shapes.get("return")
    out: list[Finding] = []
    seen_dtypes: dict[str, ast.Return] = {}
    for node in _body_walk(contract.fn.node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        fact = facts.of_expr(node.value)
        if fact is None:
            continue
        if fact.dtype is not None:
            if declared and fact.dtype not in declared:
                out.append(
                    _finding(
                        contract,
                        node,
                        "SIM307",
                        f"{contract.fn.qualname} returns dtype {fact.dtype} "
                        f"where the contract declares {'/'.join(declared)}; "
                        "njit cannot unify the branch types",
                    )
                )
            elif seen_dtypes and fact.dtype not in seen_dtypes:
                first = next(iter(seen_dtypes))
                out.append(
                    _finding(
                        contract,
                        node,
                        "SIM307",
                        f"{contract.fn.qualname} returns dtype {fact.dtype} "
                        f"on this branch but {first} on another; njit "
                        "cannot unify branch-dependent return types",
                    )
                )
            seen_dtypes.setdefault(fact.dtype, node)
        if (
            declared_shape is not None
            and fact.ndim is not None
            and fact.ndim != len(declared_shape)
        ):
            out.append(
                _finding(
                    contract,
                    node,
                    "SIM307",
                    f"{contract.fn.qualname} returns a {fact.ndim}-D array "
                    f"where the contract declares {len(declared_shape)}-D",
                )
            )
    return out


def _check_int_overflow(
    graph: ProjectGraph, contract: StaticContract
) -> list[Finding]:
    """SIM308 — integer expressions that exceed the int64 lanes njit uses."""
    out: list[Finding] = []

    def literal_int(node: ast.expr) -> int | None:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = literal_int(node.operand)
            return None if inner is None else -inner
        if isinstance(node, ast.Constant) and type(node.value) is int:
            return node.value
        return None

    for node in _body_walk(contract.fn.node):
        value: int | None = None
        if isinstance(node, ast.Constant):
            value = literal_int(node)
        elif isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Pow, ast.LShift)
        ):
            left, right = literal_int(node.left), literal_int(node.right)
            if left is not None and right is not None and 0 <= right < 1024:
                value = left**right if isinstance(node.op, ast.Pow) else left << right
        if value is not None and not -_INT64_MAX - 1 <= value <= _INT64_MAX:
            out.append(
                _finding(
                    contract,
                    node,
                    "SIM308",
                    f"{contract.fn.qualname} computes the integer {value} "
                    "which exceeds int64; Python's arbitrary precision "
                    "silently becomes wraparound under njit",
                )
            )
    return out


_BODY_CHECKS: tuple[
    Callable[[ProjectGraph, StaticContract], list[Finding]], ...
] = (
    _check_object_mode,
    _check_dtype_stability,
    _check_numpy_surface,
    _check_loop_allocation,
    _check_reflection,
    _check_return_stability,
    _check_int_overflow,
)


# ---------------------------------------------------------------------------
# SIM306: closure certification fixpoint
# ---------------------------------------------------------------------------


def _closure_violations(
    graph: ProjectGraph,
    contract: StaticContract,
    certified_nodes: set[int],
) -> list[Finding]:
    module = contract.fn.module
    out: list[Finding] = []
    for node in _body_walk(contract.fn.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if len(dotted) == 1 and dotted[0] in _SAFE_BUILTINS:
            continue
        fq = _resolved_callee(module, node)
        if fq is None or fq.startswith(_SAFE_MODULE_PREFIXES):
            continue
        target = graph.function(fq)
        if target is None or id(target.node) in certified_nodes:
            continue
        out.append(
            _finding(
                contract,
                node,
                "SIM306",
                f"{contract.fn.qualname} calls {fq} which is not a "
                "certified nopython kernel; the whole reachable closure "
                "must certify before this kernel can compile",
            )
        )
    return out


def certification(graph: ProjectGraph) -> dict[str, KernelCertification]:
    """Compile-readiness verdicts for every ``nopython=True`` contract.

    Keyed by the kernel's defining fully-qualified name (aliases from
    re-exports collapse onto one entry).  Memoised on the graph's
    ``analysis_cache`` — rule classes and the manifest writer share one
    certification pass per lint run.
    """
    cached = graph.analysis_cache.get("compile_certification")
    if cached is not None:
        return cached
    results: dict[str, KernelCertification] = {}
    seen_nodes: set[int] = set()
    for fq in sorted(contract_index(graph)):
        contract = contract_index(graph)[fq]
        if not contract.nopython or id(contract.fn.node) in seen_nodes:
            continue
        seen_nodes.add(id(contract.fn.node))
        cert = KernelCertification(contract=contract)
        for check in _BODY_CHECKS:
            cert.findings.extend(check(graph, contract))
        results[contract.fn.fqname] = cert
    certified_nodes = {
        id(cert.contract.fn.node)
        for cert in results.values()
        if cert.certified
    }
    changed = True
    while changed:
        changed = False
        for cert in results.values():
            if cert.findings:
                continue
            bad = _closure_violations(graph, cert.contract, certified_nodes)
            if bad:
                cert.findings.extend(bad)
                certified_nodes.discard(id(cert.contract.fn.node))
                changed = True
    graph.analysis_cache["compile_certification"] = results
    return results


def certified_kernels(graph: ProjectGraph) -> list[str]:
    """Fully-qualified names of every certified nopython kernel, sorted."""
    return sorted(
        fq for fq, cert in certification(graph).items() if cert.certified
    )


# ---------------------------------------------------------------------------
# rule registry (findings are views over the shared certification)
# ---------------------------------------------------------------------------


class CompileRule(ProjectRule):
    """One SIM30x rule: filters its findings out of the certification."""

    #: a positive finding implies ``numba.njit`` provably fails on the
    #: body (the differential fixture suite asserts this); rules whose
    #: positives compile-but-misbehave (allocation churn, silent
    #: wraparound) leave it False.
    compile_breaking: ClassVar[bool] = False

    def check(self) -> None:
        for cert in certification(self.graph).values():
            self.findings.extend(
                f for f in cert.findings if f.rule == self.id
            )


def register_compile(cls: type[CompileRule]) -> type[CompileRule]:
    if not cls.id:
        raise ValueError(f"{cls.__name__} must define a rule id")
    if cls.id in COMPILE_RULES:
        raise ValueError(f"duplicate compile rule id {cls.id}")
    COMPILE_RULES[cls.id] = cls
    return cls


@register_compile
class ObjectModeRule(CompileRule):
    id = "SIM301"
    summary = "nopython kernel uses an object-mode construct"
    compile_breaking = True


@register_compile
class DtypeStabilityRule(CompileRule):
    id = "SIM302"
    summary = "nopython kernel rebinds a declared-dtype name to another dtype"


@register_compile
class NumpySurfaceRule(CompileRule):
    id = "SIM303"
    summary = "nopython kernel uses a NumPy form numba rejects"
    compile_breaking = True


@register_compile
class LoopAllocationRule(CompileRule):
    id = "SIM304"
    summary = "nopython kernel allocates inside its hot loop"


@register_compile
class ReflectionRule(CompileRule):
    id = "SIM305"
    summary = "nopython kernel captures a reflected list or mutable global"
    compile_breaking = True


@register_compile
class ClosureRule(CompileRule):
    id = "SIM306"
    summary = "nopython kernel calls outside the certified closure"
    compile_breaking = True


@register_compile
class ReturnStabilityRule(CompileRule):
    id = "SIM307"
    summary = "nopython kernel's return dtype/shape is branch-dependent"
    compile_breaking = True


@register_compile
class IntOverflowRule(CompileRule):
    id = "SIM308"
    summary = "nopython kernel computes an integer exceeding int64"


def run_compile_rules(
    graph: ProjectGraph, select: set[str] | None = None
) -> list[Finding]:
    """Run the registered compile-readiness rules over ``graph``."""
    findings: list[Finding] = []
    for rule_id in sorted(COMPILE_RULES):
        if select is not None and rule_id not in select:
            continue
        rule = COMPILE_RULES[rule_id](graph)
        rule.check()
        findings.extend(rule.findings)
    return findings


PROFILES["compile"] = frozenset(COMPILE_RULES)


# ---------------------------------------------------------------------------
# certification manifest
# ---------------------------------------------------------------------------


def build_graph(root: Path) -> ProjectGraph:
    """Parse every ``.py`` file under ``root`` into one project graph."""
    parsed: list[tuple[str, ast.Module]] = []
    for path in sorted(root.rglob("*.py")):
        parsed.append(
            (str(path), ast.parse(path.read_text(encoding="utf-8")))
        )
    return ProjectGraph.build(parsed)


def manifest_payload(root: Path) -> dict:
    """The manifest document for the source tree under ``root``.

    Listing the rule set alongside the certified kernels makes adding a
    rule invalidate the committed manifest — re-certification is forced
    through the ``--check`` CI gate, never skipped silently.
    """
    graph = build_graph(root)
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "rules": sorted(COMPILE_RULES),
        "certified": certified_kernels(graph),
    }


def render_manifest(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.compile_rules",
        description="certify nopython kernels and maintain the manifest",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("src/repro"),
        help="source tree to certify (default: src/repro)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_MANIFEST,
        help=f"manifest path (default: {DEFAULT_MANIFEST})",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--write-manifest",
        action="store_true",
        help="regenerate the certification manifest",
    )
    group.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the committed manifest matches a fresh run",
    )
    args = parser.parse_args(argv)
    if not args.root.is_dir():
        print(f"error: no such directory: {args.root}", file=sys.stderr)
        return 2
    text = render_manifest(manifest_payload(args.root))
    if args.write_manifest:
        args.out.write_text(text, encoding="utf-8")
        certified = json.loads(text)["certified"]
        print(f"wrote {args.out} ({len(certified)} certified kernels)")
        return 0
    try:
        committed = args.out.read_text(encoding="utf-8")
    except FileNotFoundError:
        print(f"error: manifest {args.out} is missing", file=sys.stderr)
        return 1
    if committed != text:
        print(
            f"error: manifest {args.out} is stale — run "
            "`python -m repro.devtools.compile_rules --write-manifest`",
            file=sys.stderr,
        )
        return 1
    print(f"manifest {args.out} is current")
    return 0


if __name__ == "__main__":
    sys.exit(main())
