"""Kernel array contracts and concurrency/resource-safety rules (SIM2xx).

The third analysis tier.  The per-file rules (SIM001–SIM007) see one
module, the flow rules (SIM101–SIM106) see the project graph; these
rules see *array dataflow and process boundaries* — the two things a
compiled (Numba/Cython) kernel tier and the parallel sweep executor
make load-bearing.

**Kernel contract pack** — every function decorated with
:func:`repro.sim.contract.kernel_contract` declares its array ABI
(dtypes, shape symbols, write set, contiguity, aliasing) as a literal.
The checker reads the declaration straight out of the AST and verifies
bodies and call sites with flow-sensitive dtype/shape propagation:

=========  ===========================================================
SIM201     call site passes an array whose dtype drifts from the contract
SIM202     kernel mutates a caller-visible array not declared in writes=
SIM203     call site aliases two parameters the contract keeps disjoint
SIM204     call site breaks the declared shape (rank or dim-symbol unification)
SIM205     non-contiguous array passed where the contract demands C order
=========  ===========================================================

**Concurrency pack** — process/thread-boundary hazards in the parallel
experiment layer:

=========  ===========================================================
SIM206     SharedMemory segment without close()/unlink() on every exit path
SIM207     module-global mutation reachable from pool worker functions
SIM208     signal.alarm/SIGALRM installed off the main thread
SIM209     file write in experiments/ bypassing the atomic tmp+fsync+replace pattern
SIM210     RNG object smuggled through a pickled closure into a worker
SIM211     await between read and write of shared async-server state, no lock
SIM212     root SeedSequence/Generator crossing a process boundary unspawned
=========  ===========================================================

The static analysis is deliberately **conservative**: a fact it cannot
prove (an array of unknown dtype, an unresolvable receiver) produces no
finding.  What it *does* claim is falsifiable — the runtime validator
(``REPRO_SIM_STRICT=1``) enforces the same contracts at call time, and
``tests/sim/test_kernel_contract.py`` property-tests their agreement.

Rationale and a positive/negative example per rule live in
``docs/DEVTOOLS.md``.
"""

from __future__ import annotations

import ast
import os
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping

from .findings import Finding
from .graph import CallSite, FunctionInfo, ModuleInfo, ProjectGraph, ProjectRule
from .rules import _dotted, _snake_words, _terminal_name

__all__ = [
    "CONTRACT_RULES",
    "PROFILES",
    "StaticContract",
    "contract_index",
    "register_contract",
    "run_contract_rules",
]


# ---------------------------------------------------------------------------
# registry (separate from PROJECT_RULES so each tier stays independently
# testable and selectable)
# ---------------------------------------------------------------------------


CONTRACT_RULES: dict[str, type["ProjectRule"]] = {}


def register_contract(cls: type["ProjectRule"]) -> type["ProjectRule"]:
    """Class decorator adding a contract/concurrency rule to the registry."""
    if not getattr(cls, "id", None):
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in CONTRACT_RULES:
        raise ValueError(f"duplicate contract rule id {cls.id}")
    CONTRACT_RULES[cls.id] = cls
    return cls


def run_contract_rules(
    graph: ProjectGraph, select: set[str] | None = None
) -> list[Finding]:
    """Run every registered (selected) contract rule over ``graph``."""
    findings: list[Finding] = []
    for rule_id in sorted(CONTRACT_RULES):
        if select is not None and rule_id not in select:
            continue
        rule = CONTRACT_RULES[rule_id](graph)
        rule.check()
        findings.extend(rule.findings)
    return findings


#: named rule sets for ``repro lint --profile``.  ``all`` is resolved by
#: the runner (every registered rule across all three tiers).
PROFILES: dict[str, frozenset[str]] = {
    "kernels": frozenset({"SIM201", "SIM202", "SIM203", "SIM204", "SIM205"}),
    "concurrency": frozenset(
        {"SIM206", "SIM207", "SIM208", "SIM209", "SIM210", "SIM211", "SIM212"}
    ),
}


# ---------------------------------------------------------------------------
# contract extraction (from the @kernel_contract decorator AST)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticContract:
    """One ``@kernel_contract`` declaration, read from the AST."""

    shapes: Mapping[str, tuple]
    dtypes: Mapping[str, tuple[str, ...]]
    writes: tuple[str, ...]
    contiguous: tuple[str, ...]
    allow_alias: tuple[tuple[str, str], ...]
    fn: FunctionInfo
    #: declared compile-candidate (``nopython=True``) — scopes SIM301+.
    nopython: bool = False

    def param_names(self) -> list[str]:
        """Parameters the contract constrains (return keys excluded)."""
        keys = set(self.shapes) | set(self.dtypes) | set(self.contiguous)
        return sorted(
            k for k in keys if k != "return" and not k.startswith("return[")
        )

    def dtype_names(self, name: str) -> tuple[str, ...]:
        return self.dtypes.get(name, ())

    def may_alias(self, a: str, b: str) -> bool:
        return (a, b) in self.allow_alias or (b, a) in self.allow_alias


def _decorator_contract(deco: ast.expr) -> dict | None:
    """Parse one decorator expression as a literal contract, if it is one."""
    if not isinstance(deco, ast.Call):
        return None
    if _terminal_name(deco.func) != "kernel_contract":
        return None
    fields: dict = {}
    for kw in deco.keywords:
        if kw.arg is None:
            return None  # **kwargs declaration is invisible to the checker
        try:
            fields[kw.arg] = ast.literal_eval(kw.value)
        except (ValueError, SyntaxError):
            return None  # computed declaration: skip, runtime still checks
    return fields


def _normalise_dtypes(raw: Mapping | None) -> dict[str, tuple[str, ...]]:
    out: dict[str, tuple[str, ...]] = {}
    for name, decl in (raw or {}).items():
        out[name] = (decl,) if isinstance(decl, str) else tuple(decl)
    return out


def contract_index(graph: ProjectGraph) -> dict[str, StaticContract]:
    """Every declared contract, keyed by fqname **and** re-export aliases.

    ``repro.sim.kernel`` re-exports the ``repro.sim.fast`` kernels; a call
    site resolving through either name must find the same contract, so
    import aliases are propagated to a fixpoint.  Memoised on the graph's
    ``analysis_cache`` — one extraction per lint run.
    """
    cached = graph.analysis_cache.get("contract_index")
    if cached is not None:
        return cached
    index: dict[str, StaticContract] = {}
    for info in graph.by_path.values():
        for fn in info.functions.values():
            for deco in fn.node.decorator_list:
                fields = _decorator_contract(deco)
                if fields is None:
                    continue
                index[fn.fqname] = StaticContract(
                    shapes={
                        k: tuple(v) for k, v in (fields.get("shapes") or {}).items()
                    },
                    dtypes=_normalise_dtypes(fields.get("dtypes")),
                    writes=tuple(fields.get("writes") or ()),
                    contiguous=tuple(fields.get("contiguous") or ()),
                    allow_alias=tuple(
                        tuple(pair) for pair in (fields.get("allow_alias") or ())
                    ),
                    fn=fn,
                    nopython=bool(fields.get("nopython", False)),
                )
                break
    changed = True
    while changed:
        changed = False
        for info in graph.by_path.values():
            for local, target in info.imports.items():
                alias = f"{info.name}.{local}"
                if target in index and alias not in index:
                    index[alias] = index[target]
                    changed = True
    graph.analysis_cache["contract_index"] = index
    return index


# ---------------------------------------------------------------------------
# array-fact dataflow (conservative: unknown facts never report)
# ---------------------------------------------------------------------------


#: dtype spellings the fact engine recognises in ``dtype=`` positions.
_DTYPE_NAMES = frozenset(
    {
        "float16", "float32", "float64", "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64", "bool_", "complex64",
        "complex128",
    }
)
_DTYPE_SYNONYMS = {"float": "float64", "int": "int64", "bool": "bool_"}

#: numpy constructors that always return a fresh C-contiguous array.
_FRESH_1D_CTORS = frozenset({"empty", "zeros", "ones", "full"})


@dataclass(frozen=True)
class ArrayFact:
    """What the dataflow knows about one expression's array value."""

    dtype: str | None = None
    ndim: int | None = None
    length: int | None = None  #: extent of axis 0 when literally known
    contiguous: bool | None = None
    alias_of: str | None = None  #: local name this value views, if any


def _dtype_of_node(node: ast.expr | None) -> str | None:
    """The dtype name an AST expression denotes (``np.float32`` → float32)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in _DTYPE_NAMES else None
    if isinstance(node, ast.Call) and _terminal_name(node.func) == "dtype":
        return _dtype_of_node(node.args[0]) if node.args else None
    tail = _terminal_name(node)
    if tail in _DTYPE_NAMES:
        return tail
    return _DTYPE_SYNONYMS.get(tail or "")


def _literal_array_shape(node: ast.expr) -> tuple[int | None, int | None, str | None]:
    """(ndim, length, dtype) of a literal list/tuple array payload."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None, None, None
    elts = node.elts
    if any(isinstance(e, (ast.List, ast.Tuple)) for e in elts):
        return 2, len(elts), None  # nested: 2-D is all we ever need
    kinds = set()
    for e in elts:
        if isinstance(e, ast.UnaryOp) and isinstance(e.op, ast.USub):
            e = e.operand
        if not isinstance(e, ast.Constant):
            return 1, len(elts), None
        kinds.add(type(e.value))
    if not kinds:
        return 1, 0, "float64"  # np.array([]) defaults to float64
    if bool in kinds or not kinds <= {int, float}:
        return 1, len(elts), None
    dtype = "float64" if float in kinds else "int64"
    return 1, len(elts), dtype


def _kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class UnitFacts:
    """Lazily resolved array facts for one function body (or module level).

    Facts are attached to *single-assignment* local names only; a name
    assigned twice is unknown.  That keeps the analysis sound without a
    real flow graph, at the cost of missing some true positives — the
    deliberate trade for a linter that never cries wolf.
    """

    _MAX_DEPTH = 6

    def __init__(self, nodes: Iterable[ast.AST]) -> None:
        counts: Counter[str] = Counter()
        exprs: dict[str, ast.expr] = {}
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value: ast.expr | None = node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                value = node.value
            elif isinstance(node, (ast.For, ast.AugAssign)):
                for name in _assigned_names(node):
                    counts[name] += 1
                continue
            else:
                continue
            if isinstance(target, ast.Name) and value is not None:
                counts[target.id] += 1
                exprs[target.id] = value
        self._exprs = {n: e for n, e in exprs.items() if counts[n] == 1}

    def of_name(self, name: str, depth: int = 0) -> ArrayFact | None:
        expr = self._exprs.get(name)
        if expr is None or depth > self._MAX_DEPTH:
            return None
        return self.of_expr(expr, depth + 1)

    def alias_root(self, name: str, depth: int = 0) -> str:
        """Follow view chains (``y = x[1:]``) back to the root local name."""
        if depth > self._MAX_DEPTH:
            return name
        fact = self.of_name(name, depth)
        if fact is not None and fact.alias_of is not None:
            return self.alias_root(fact.alias_of, depth + 1)
        return name

    def of_expr(self, expr: ast.expr, depth: int = 0) -> ArrayFact | None:
        if depth > self._MAX_DEPTH:
            return None
        if isinstance(expr, ast.Name):
            fact = self.of_name(expr.id, depth)
            if fact is None:
                return None
            # a bare name *is* the named array: record the alias link.
            return ArrayFact(
                dtype=fact.dtype,
                ndim=fact.ndim,
                length=fact.length,
                contiguous=fact.contiguous,
                alias_of=expr.id,
            )
        if isinstance(expr, ast.Call):
            return self._of_call(expr, depth)
        if isinstance(expr, ast.Subscript):
            return self._of_subscript(expr, depth)
        return None

    # -- constructors ----------------------------------------------------

    def _of_call(self, call: ast.Call, depth: int) -> ArrayFact | None:
        func = call.func
        tail = _terminal_name(func)
        if tail is None:
            return None
        dtype_kw = _dtype_of_node(_kwarg(call, "dtype"))
        if tail in _FRESH_1D_CTORS:
            ndim, length = self._shape_arg(call.args[0] if call.args else None)
            dtype = dtype_kw
            if dtype is None:
                if tail == "full" and len(call.args) >= 2:
                    dtype = self._fill_dtype(call.args[1])
                else:
                    dtype = "float64"
            return ArrayFact(dtype=dtype, ndim=ndim, length=length, contiguous=True)
        if tail == "arange":
            dtype = dtype_kw
            if dtype is None:
                dtype = (
                    "float64"
                    if any(self._fill_dtype(a) == "float64" for a in call.args)
                    else "int64"
                )
            return ArrayFact(dtype=dtype, ndim=1, contiguous=True)
        if tail == "linspace":
            return ArrayFact(dtype=dtype_kw or "float64", ndim=1, contiguous=True)
        if tail in ("array", "asarray", "ascontiguousarray"):
            if not call.args:
                return None
            src = call.args[0]
            ndim, length, literal_dtype = _literal_array_shape(src)
            if ndim is not None:
                return ArrayFact(
                    dtype=dtype_kw or literal_dtype,
                    ndim=ndim,
                    length=length,
                    contiguous=True,
                )
            src_fact = self.of_expr(src, depth + 1)
            contiguous: bool | None = True
            if tail == "asarray" and dtype_kw is None:
                # asarray never copies a matching array: contiguity (and
                # aliasing) pass straight through.
                contiguous = src_fact.contiguous if src_fact else None
            return ArrayFact(
                dtype=dtype_kw or (src_fact.dtype if src_fact else None),
                ndim=src_fact.ndim if src_fact else None,
                length=src_fact.length if src_fact else None,
                contiguous=contiguous,
            )
        if isinstance(func, ast.Attribute) and tail == "astype":
            dtype = _dtype_of_node(call.args[0]) if call.args else None
            base = self.of_expr(func.value, depth + 1)
            return ArrayFact(
                dtype=dtype,
                ndim=base.ndim if base else None,
                length=base.length if base else None,
                contiguous=True,
            )
        if isinstance(func, ast.Attribute) and tail == "copy":
            base = self.of_expr(func.value, depth + 1)
            if base is None:
                return None
            return ArrayFact(
                dtype=base.dtype, ndim=base.ndim, length=base.length, contiguous=True
            )
        return None

    def _of_subscript(self, expr: ast.Subscript, depth: int) -> ArrayFact | None:
        if not isinstance(expr.value, ast.Name):
            return None
        base = self.of_name(expr.value.id, depth)
        root = expr.value.id
        index = expr.slice
        if isinstance(index, ast.Slice):
            step = index.step
            contiguous: bool | None = None
            if (
                isinstance(step, ast.Constant)
                and isinstance(step.value, int)
                and step.value not in (1, -1)
            ):
                contiguous = False
            if isinstance(step, ast.Constant) and step.value == -1:
                contiguous = False
            return ArrayFact(
                dtype=base.dtype if base else None,
                ndim=base.ndim if base else None,
                contiguous=contiguous,
                alias_of=root,
            )
        return None  # advanced indexing copies; scalar indexing isn't an array

    @staticmethod
    def _shape_arg(node: ast.expr | None) -> tuple[int | None, int | None]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return 1, node.value
        if isinstance(node, (ast.Tuple, ast.List)):
            length = None
            first = node.elts[0] if node.elts else None
            if isinstance(first, ast.Constant) and isinstance(first.value, int):
                length = first.value
            return len(node.elts), length
        return None, None

    @staticmethod
    def _fill_dtype(node: ast.expr) -> str | None:
        if isinstance(node, ast.UnaryOp):
            node = node.operand
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return "bool_"
            if isinstance(node.value, float):
                return "float64"
            if isinstance(node.value, int):
                return "int64"
        return None


def _assigned_names(node: ast.AST) -> set[str]:
    """Names (re)bound by a loop target or augmented assignment."""
    out: set[str] = set()
    target = getattr(node, "target", None)
    if target is not None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                out.add(sub.id)
    return out


# ---------------------------------------------------------------------------
# shared per-module machinery (owners, units, pytest.raises scopes)
# ---------------------------------------------------------------------------


def _module_units(module: ModuleInfo) -> list[tuple[FunctionInfo | None, list[ast.AST]]]:
    from .flow import _units  # late import: flow imports graph, not us

    return _units(module)


def _call_owners(
    graph: ProjectGraph, module: ModuleInfo
) -> dict[int, FunctionInfo | None]:
    """Map ``id(call node)`` → enclosing function for one module (memoised)."""
    cache = graph.analysis_cache.setdefault("call_owners", {})
    owners = cache.get(module.path)
    if owners is None:
        owners = {}
        for fn, nodes in _module_units(module):
            for node in nodes:
                if isinstance(node, ast.Call):
                    owners[id(node)] = fn
        cache[module.path] = owners
    return owners


def _unit_facts(
    graph: ProjectGraph, module: ModuleInfo, fn: FunctionInfo | None
) -> UnitFacts:
    cache = graph.analysis_cache.setdefault("unit_facts", {})
    key = (module.path, fn.qualname if fn is not None else None)
    facts = cache.get(key)
    if facts is None:
        from .flow import _unit_nodes

        nodes = (
            list(_unit_nodes(fn.node, whole=True))
            if fn is not None
            else list(_unit_nodes(module.tree, whole=False))
        )
        facts = UnitFacts(nodes)
        cache[key] = facts
    return facts


def _negative_test_scopes(graph: ProjectGraph, module: ModuleInfo) -> set[int]:
    """Node ids inside ``with pytest.raises(...)`` blocks (intentional
    contract violations in tests must not be reported)."""
    cache = graph.analysis_cache.setdefault("raises_scopes", {})
    scoped = cache.get(module.path)
    if scoped is None:
        scoped = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            if any(
                isinstance(item.context_expr, ast.Call)
                and _terminal_name(item.context_expr.func) == "raises"
                for item in node.items
            ):
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        scoped.add(id(sub))
        cache[module.path] = scoped
    return scoped


def _bind_call(fn: FunctionInfo, call: ast.Call) -> dict[str, ast.expr] | None:
    """Map a call site's argument expressions onto ``fn``'s parameter names.

    Returns ``None`` when the binding is not statically knowable
    (``*args``/``**kwargs`` at the call site).
    """
    if any(isinstance(a, ast.Starred) for a in call.args) or any(
        kw.arg is None for kw in call.keywords
    ):
        return None
    a = fn.node.args
    names = [p.arg for p in (*a.posonlyargs, *a.args)]
    if fn.is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    bound: dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if i < len(names):
            bound[names[i]] = arg
    for kw in call.keywords:
        if kw.arg is not None:
            bound[kw.arg] = kw.value
    return bound


class _CallSiteRule(ProjectRule):
    """Base for rules that verify call sites of contracted kernels."""

    def check(self) -> None:
        index = contract_index(self.graph)
        seen: set[int] = set()
        for fqname in sorted(index):
            contract = index[fqname]
            for site in self.graph.call_sites(fqname):
                if id(site.node) in seen:
                    continue  # defining name + alias resolve to one call
                seen.add(id(site.node))
                if id(site.node) in _negative_test_scopes(self.graph, site.module):
                    continue
                bound = _bind_call(contract.fn, site.node)
                if bound is None:
                    continue
                owner = _call_owners(self.graph, site.module).get(id(site.node))
                facts = _unit_facts(self.graph, site.module, owner)
                self.check_call(contract, site, bound, facts)

    def check_call(
        self,
        contract: StaticContract,
        site: CallSite,
        bound: Mapping[str, ast.expr],
        facts: UnitFacts,
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


# ---------------------------------------------------------------------------
# SIM201 — dtype drift at a kernel call site
# ---------------------------------------------------------------------------


@register_contract
class DtypeDriftRule(_CallSiteRule):
    """SIM201: the dtype reaching a kernel must match its contract.

    A float32 array silently *widens* on the NumPy path (``np.asarray``
    upcasts and copies) but is a hard ABI break for a compiled kernel
    taking the buffer zero-copy — the same call produces different
    results, or garbage, depending on the backend.  Every array whose
    dtype the dataflow can prove is checked against the declaration;
    unknown dtypes pass (the runtime validator still sees them).
    """

    id = "SIM201"
    summary = "array dtype at a kernel call site drifts from the contract"

    def check_call(self, contract, site, bound, facts) -> None:
        for param, expr in bound.items():
            admissible = contract.dtype_names(param)
            if not admissible:
                continue
            fact = facts.of_expr(expr)
            if fact is None or fact.dtype is None:
                continue
            if fact.dtype not in admissible:
                self.report(
                    site.module,
                    site.node,
                    f"`{contract.fn.qualname}` takes {param} as "
                    f"{'/'.join(admissible)} but this call passes "
                    f"{fact.dtype}: the NumPy path silently converts, a "
                    "compiled kernel reading the buffer zero-copy breaks — "
                    "construct the array with the contracted dtype",
                )


# ---------------------------------------------------------------------------
# SIM202 — undeclared in-place mutation inside a kernel body
# ---------------------------------------------------------------------------


#: ndarray methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "itemset", "setfield"}
)


@register_contract
class UndeclaredWriteRule(ProjectRule):
    """SIM202: a kernel may only write the arrays its contract declares.

    ``writes=()`` is a promise to the caller: inputs come back untouched,
    so results can be reused, cached, or shared across threads.  The rule
    tracks each contracted parameter through view-creating assignments
    (``prefix = work2[:n]``, ``d = np.subtract(..., out=work1[:m])``) and
    flags subscript stores, augmented assignments, ``out=`` targets and
    mutating methods that land on a parameter missing from ``writes=``.
    Rebinding a parameter name (``t = np.asarray(t)``) ends its tracking —
    the kernel now works on its own (possibly fresh) array.
    """

    id = "SIM202"
    summary = "kernel writes a caller-visible array not declared in writes="

    def check(self) -> None:
        index = contract_index(self.graph)
        checked: set[int] = set()
        for fqname in sorted(index):
            contract = index[fqname]
            if id(contract.fn.node) in checked:
                continue
            checked.add(id(contract.fn.node))
            self._check_body(contract)

    # -- body analysis ---------------------------------------------------

    def _check_body(self, contract: StaticContract) -> None:
        tracked = {
            name: name
            for name in contract.param_names()
            if name not in contract.writes
        }
        declared_writes = set(contract.writes)
        if not tracked and not declared_writes:
            return
        alias: dict[str, str] = dict(tracked)
        alias.update({w: w for w in declared_writes})
        events = self._events(contract.fn.node)
        reported: set[str] = set()
        for _pos, kind, payload in events:
            if kind == "bind":
                name, root = payload
                target = alias.get(root)
                if target is not None:
                    alias[name] = target
                else:
                    alias.pop(name, None)
            elif kind == "unbind":
                alias.pop(payload, None)
            else:  # mutate
                node, name = payload
                root = alias.get(name)
                if root is None or root in declared_writes or root in reported:
                    continue
                reported.add(root)
                via = f" (via `{name}`)" if name != root else ""
                self.report(
                    contract.fn.module,
                    node,
                    f"`{contract.fn.qualname}` mutates parameter `{root}`"
                    f"{via} in place but its contract declares "
                    f"writes={tuple(sorted(declared_writes))!r} — add it to "
                    "writes= or work on a copy; callers assume undeclared "
                    "inputs come back untouched",
                )

    def _events(
        self, fn_node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[tuple[tuple[int, int], str, object]]:
        events: list[tuple[tuple[int, int], str, object]] = []

        def pos(node: ast.AST) -> tuple[int, int]:
            return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))

        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    root = self._view_root(node.value)
                    if root is not None:
                        events.append((pos(node), "bind", (target.id, root)))
                    else:
                        events.append((pos(node), "unbind", target.id))
                elif isinstance(target, ast.Subscript):
                    root = self._store_root(target)
                    if root is not None:
                        events.append((pos(node), "mutate", (node, root)))
            elif isinstance(node, ast.AugAssign):
                root = self._store_root(node.target)
                if root is not None:
                    events.append((pos(node), "mutate", (node, root)))
            elif isinstance(node, ast.Call):
                out = _kwarg(node, "out")
                if out is not None:
                    root = self._store_root(out)
                    if root is not None:
                        events.append((pos(node), "mutate", (node, root)))
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS
                    and isinstance(node.func.value, ast.Name)
                ):
                    events.append(
                        (pos(node), "mutate", (node, node.func.value.id))
                    )
        events.sort(key=lambda e: e[0])
        return events

    @staticmethod
    def _store_root(node: ast.expr) -> str | None:
        """The local name a store target ultimately writes into."""
        while isinstance(node, ast.Subscript):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _view_root(self, value: ast.expr) -> str | None:
        """The local name ``value`` is a view of, or None for fresh data."""
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Subscript):
            if isinstance(value.slice, ast.Slice):
                return self._view_root(value.value)
            return None
        if isinstance(value, ast.Call):
            out = _kwarg(value, "out")
            if out is not None:
                return self._view_root(out)
        return None


# ---------------------------------------------------------------------------
# SIM203 — aliased arguments the contract keeps disjoint
# ---------------------------------------------------------------------------


@register_contract
class AliasedArgumentsRule(_CallSiteRule):
    """SIM203: input and scratch buffers must not share memory.

    The in-place kernels (``_fcfs_waits_into``) overwrite their
    workspaces mid-recursion; an input aliasing a workspace is read after
    it has been clobbered and the Lindley recursion silently corrupts.
    The rule reports call sites that pass *provably* overlapping arrays —
    the same name twice, or a slice-view of another argument — for
    parameter pairs not covered by ``allow_alias``.
    """

    id = "SIM203"
    summary = "call site aliases kernel parameters declared disjoint"

    def check_call(self, contract, site, bound, facts) -> None:
        # every bound parameter participates: an argument needs no dtype
        # or shape declaration of its own to alias the written buffer.
        written = set(contract.writes)
        roots: list[tuple[str, str]] = []
        for param, expr in bound.items():
            root = self._root_of(expr, facts)
            if root is not None:
                roots.append((param, root))
        for i, (p1, r1) in enumerate(roots):
            for p2, r2 in roots[i + 1 :]:
                if r1 != r2 or contract.may_alias(p1, p2):
                    continue
                if p1 not in written and p2 not in written:
                    continue  # two read-only views sharing memory is safe
                self.report(
                    site.module,
                    site.node,
                    f"`{contract.fn.qualname}` requires {p1} and {p2} to be "
                    f"disjoint but both resolve to `{r1}`: the kernel "
                    "overwrites one while reading the other — pass "
                    "independent buffers (or declare allow_alias)",
                )

    @staticmethod
    def _root_of(expr: ast.expr, facts: UnitFacts) -> str | None:
        if isinstance(expr, ast.Name):
            return facts.alias_root(expr.id)
        if isinstance(expr, ast.Subscript) and isinstance(expr.slice, ast.Slice):
            inner = expr.value
            if isinstance(inner, ast.Name):
                return facts.alias_root(inner.id)
        return None


# ---------------------------------------------------------------------------
# SIM204 — declared shape broken at a call site
# ---------------------------------------------------------------------------


@register_contract
class ShapeContractRule(_CallSiteRule):
    """SIM204: rank and dimension symbols must unify across the call.

    A contract like ``{"t": ("n",), "s": ("n",)}`` promises equal-length
    1-D inputs; passing a 2-D array (rank break) or arrays of provably
    different lengths (symbol break) means the NumPy path broadcasts or
    raises at some interior expression, and the compiled path reads out
    of bounds.  Only literally-known shapes are compared.
    """

    id = "SIM204"
    summary = "call site breaks the kernel's declared shape contract"

    def check_call(self, contract, site, bound, facts) -> None:
        extents: dict[str, tuple[str, int]] = {}
        for param, expr in bound.items():
            spec = contract.shapes.get(param)
            if spec is None:
                continue
            fact = facts.of_expr(expr)
            if fact is None:
                continue
            if fact.ndim is not None and fact.ndim != len(spec):
                self.report(
                    site.module,
                    site.node,
                    f"`{contract.fn.qualname}` declares {param} as "
                    f"{len(spec)}-D {spec!r} but this call passes a "
                    f"{fact.ndim}-D array: the kernel would broadcast or "
                    "index out of contract — reshape or fix the argument",
                )
                continue
            if fact.length is None or not spec:
                continue
            dim = spec[0]
            if isinstance(dim, int):
                if fact.length != dim:
                    self.report(
                        site.module,
                        site.node,
                        f"`{contract.fn.qualname}` declares {param} with "
                        f"literal extent {dim} but this call passes length "
                        f"{fact.length}",
                    )
                continue
            prior = extents.get(dim)
            if prior is None:
                extents[dim] = (param, fact.length)
            elif prior[1] != fact.length:
                self.report(
                    site.module,
                    site.node,
                    f"dimension {dim!r} of `{contract.fn.qualname}` is "
                    f"{prior[1]} via {prior[0]} but {fact.length} via "
                    f"{param}: unequal lengths broadcast or truncate the "
                    "recursion — the contract requires them to match",
                )


# ---------------------------------------------------------------------------
# SIM205 — non-contiguous array where the contract demands C order
# ---------------------------------------------------------------------------


@register_contract
class ContiguityRule(_CallSiteRule):
    """SIM205: scan kernels assume C-contiguous input.

    A strided view (``x[::2]``, a transposed row) walks memory with a
    gap; the NumPy reference path tolerates it at a copy's cost, a
    compiled pointer-walking scan reads the wrong elements.  Arguments
    the dataflow can prove non-contiguous must pass through
    ``np.ascontiguousarray`` first.
    """

    id = "SIM205"
    summary = "provably non-contiguous array passed to a contiguous= parameter"

    def check_call(self, contract, site, bound, facts) -> None:
        for param in contract.contiguous:
            expr = bound.get(param)
            if expr is None:
                continue
            fact = facts.of_expr(expr)
            if fact is not None and fact.contiguous is False:
                self.report(
                    site.module,
                    site.node,
                    f"`{contract.fn.qualname}` requires {param} to be "
                    "C-contiguous but this call passes a strided view — "
                    "wrap it in np.ascontiguousarray(...) before the scan",
                )


# ---------------------------------------------------------------------------
# SIM206 — SharedMemory lifecycle
# ---------------------------------------------------------------------------


@register_contract
class SharedMemoryLifecycleRule(ProjectRule):
    """SIM206: every SharedMemory segment needs cleanup on every exit path.

    A segment that is created but not closed/unlinked when an exception
    unwinds leaks a ``/dev/shm`` file for the machine's uptime — across a
    sweep of thousands of points that exhausts shared memory and every
    later run fails with ENOSPC.  Acceptable custody chains: a ``with``
    block, ``close()``/``unlink()`` in a ``finally``, returning the
    segment, or storing it into an attribute/container whose owner
    manages the lifetime (the arena pattern).
    """

    id = "SIM206"
    summary = "SharedMemory without close()/unlink() on every exit path"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    def check(self) -> None:
        for module in self.modules():
            parents: dict[int, ast.AST] = {}
            for parent in ast.walk(module.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            owners = _call_owners(self.graph, module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_shm_ctor(node, module):
                    continue
                if self._has_custody(node, parents, owners, module):
                    continue
                self.report(
                    module,
                    node,
                    "SharedMemory segment has no cleanup on the exception "
                    "path: an unwound error leaks the /dev/shm file until "
                    "reboot — use a with block, close()/unlink() in a "
                    "finally, or hand the segment to an owning arena",
                )

    @staticmethod
    def _is_shm_ctor(node: ast.Call, module: ModuleInfo) -> bool:
        resolved = module.resolve(_dotted(node.func))
        if resolved and resolved.endswith("shared_memory.SharedMemory"):
            return True
        return _terminal_name(node.func) == "SharedMemory"

    def _has_custody(
        self,
        ctor: ast.Call,
        parents: Mapping[int, ast.AST],
        owners: Mapping[int, FunctionInfo | None],
        module: ModuleInfo,
    ) -> bool:
        parent = parents.get(id(ctor))
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, ast.Return):
            return True
        if isinstance(parent, ast.Call):
            return True  # passed straight to a consumer: custody transferred
        if isinstance(parent, ast.Assign):
            targets = parent.targets
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                name = targets[0].id
                fn = owners.get(id(ctor))
                scope = fn.node if fn is not None else module.tree
                return self._name_has_custody(name, scope)
            if len(targets) == 1 and isinstance(targets[0], ast.Attribute):
                return True  # stored on an object: owner manages lifetime
        return False

    @staticmethod
    def _name_has_custody(name: str, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in ("close", "unlink")
                            and isinstance(sub.func.value, ast.Name)
                            and sub.func.value.id == name
                        ):
                            return True
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                if node.value.id == name:
                    return True
            if isinstance(node, ast.Call):
                # escape into a container or another object's attribute:
                # arena/owner patterns (self._segments.append(shm)).
                for arg in node.args:
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id == name
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("append", "add", "register", "push")
                    ):
                        return True
            if isinstance(node, ast.Assign):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == name
                    and any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in node.targets
                    )
                ):
                    return True
        return False


# ---------------------------------------------------------------------------
# worker reachability (shared by SIM207/SIM210)
# ---------------------------------------------------------------------------


_POOL_SUBMIT_TAILS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "apply"}
)
_PROCESS_POOL_CTORS = frozenset({"ProcessPoolExecutor", "Pool"})
_THREAD_POOL_CTORS = frozenset({"ThreadPoolExecutor"})


def _pool_kinds(module: ModuleInfo) -> dict[str, str]:
    """Local name → "process"/"thread" for every pool-valued binding."""
    kinds: dict[str, str] = {}
    for node in ast.walk(module.tree):
        value: ast.expr | None = None
        names: list[str] = []
        if isinstance(node, ast.Assign):
            value = node.value
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            value = node.context_expr
            if isinstance(node.optional_vars, ast.Name):
                names = [node.optional_vars.id]
        if value is None or not names:
            continue
        tail = _terminal_name(value.func) if isinstance(value, ast.Call) else None
        if tail in _PROCESS_POOL_CTORS:
            for name in names:
                kinds[name] = "process"
        elif tail in _THREAD_POOL_CTORS:
            for name in names:
                kinds[name] = "thread"
    return kinds


def _entry_fqnames(
    module: ModuleInfo, kind: str
) -> set[str]:
    """Fully-qualified functions handed to pools/threads of ``kind``."""
    kinds = _pool_kinds(module)
    roots: set[str] = set()

    def resolve(expr: ast.expr) -> None:
        target = module.resolve(_dotted(expr))
        if target is not None:
            roots.add(target)

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        tail = _terminal_name(node.func)
        if tail in _POOL_SUBMIT_TAILS and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and kinds.get(receiver.id) == kind
                and node.args
            ):
                resolve(node.args[0])
        if kind == "process" and tail in _PROCESS_POOL_CTORS:
            init = _kwarg(node, "initializer")
            if init is not None:
                resolve(init)
        if tail == "Process" and kind == "process":
            target = _kwarg(node, "target")
            if target is not None:
                resolve(target)
        if tail in ("Thread", "Timer") and kind == "thread":
            target = _kwarg(node, "target")
            if target is not None:
                resolve(target)
    return roots


def _reachable_functions(graph: ProjectGraph, kind: str) -> set[str]:
    """Transitive closure of project functions running inside ``kind``
    workers (memoised on the graph)."""
    cache_key = f"{kind}_reachable"
    cached = graph.analysis_cache.get(cache_key)
    if cached is not None:
        return cached
    frontier: list[str] = []
    for info in graph.by_path.values():
        frontier.extend(_entry_fqnames(info, kind))
    reachable: set[str] = set()
    while frontier:
        fq = frontier.pop()
        if fq in reachable:
            continue
        fn = graph.function(fq)
        if fn is None:
            continue
        reachable.add(fq)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callee = fn.module.resolve(_dotted(node.func))
                if callee is not None and callee not in reachable:
                    frontier.append(callee)
    graph.analysis_cache[cache_key] = reachable
    return reachable


# ---------------------------------------------------------------------------
# SIM207 — module-global mutation reachable from pool workers
# ---------------------------------------------------------------------------


@register_contract
class WorkerGlobalMutationRule(ProjectRule):
    """SIM207: worker-side global state never reaches the parent.

    A ``ProcessPoolExecutor`` worker runs in a forked/spawned process: a
    module global it mutates changes *its* copy only.  Code that also
    reads or writes the same global outside the worker set is relying on
    shared state that does not exist — the classic lost-update that
    works single-process and silently drops data in parallel runs.
    Worker-only globals (the initializer pattern) are fine.  Assigning
    attributes on an *imported module* from worker code (monkeypatching)
    is always flagged: with ``fork`` it races the parent, with ``spawn``
    it diverges from it.
    """

    id = "SIM207"
    summary = "module-global mutation reachable from process-pool workers"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    def check(self) -> None:
        workers = _reachable_functions(self.graph, "process")
        if not workers:
            return
        in_scope = {m.name for m in self.modules()}
        for fq in sorted(workers):
            fn = self.graph.function(fq)
            if fn is None or fn.module.name not in in_scope:
                continue
            self._check_worker_fn(fn, workers)

    def _check_worker_fn(self, fn: FunctionInfo, workers: set[str]) -> None:
        module = fn.module
        global_names: set[str] = set()
        imported = set(module.imports)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
            elif isinstance(node, ast.ImportFrom):
                # function-local imports (the resource_tracker pattern)
                imported.update(a.asname or a.name for a in node.names)
            elif isinstance(node, ast.Import):
                imported.update(
                    a.asname or a.name.partition(".")[0] for a in node.names
                )
        mutated: dict[str, ast.AST] = {}
        patched: dict[str, ast.AST] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name) and target.id in global_names:
                    mutated.setdefault(target.id, node)
                elif isinstance(target, ast.Subscript):
                    base = target.value
                    if isinstance(base, ast.Name) and base.id in module.constants:
                        mutated.setdefault(base.id, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in global_names:
                        mutated.setdefault(target.id, node)
                    elif isinstance(target, ast.Subscript):
                        base = target.value
                        if (
                            isinstance(base, ast.Name)
                            and base.id in module.constants
                        ):
                            mutated.setdefault(base.id, node)
                    elif isinstance(target, ast.Attribute):
                        head = _dotted(target.value)[:1]
                        if head and head[0] in imported:
                            patched.setdefault(
                                f"{head[0]}.{target.attr}", node
                            )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                base = node.func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in module.constants
                    and node.func.attr
                    in ("append", "add", "update", "setdefault", "extend", "pop")
                ):
                    mutated.setdefault(base.id, node)
        for name, node in sorted(patched.items()):
            self.report(
                module,
                node,
                f"worker-reachable `{fn.qualname}` monkeypatches imported "
                f"module attribute `{name}`: under fork this races the "
                "parent's copy, under spawn it silently diverges from it — "
                "pass the behaviour explicitly instead of patching shared "
                "module state",
            )
        for name, node in sorted(mutated.items()):
            if self._used_outside_workers(module, name, workers):
                self.report(
                    module,
                    node,
                    f"worker-reachable `{fn.qualname}` mutates module global "
                    f"`{name}`, which is also used outside the worker set: "
                    "each pool process mutates its own copy, so the parent "
                    "never sees the update — return the value or go through "
                    "the checkpoint store",
                )

    @staticmethod
    def _used_outside_workers(
        module: ModuleInfo, name: str, workers: set[str]
    ) -> bool:
        for fn in module.functions.values():
            if fn.fqname in workers:
                continue
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Name) and node.id == name:
                    return True
        return False


# ---------------------------------------------------------------------------
# SIM208 — SIGALRM off the main thread
# ---------------------------------------------------------------------------


@register_contract
class ThreadSignalRule(ProjectRule):
    """SIM208: ``signal.alarm``/``setitimer``/``signal`` only work on the
    main thread.

    Python delivers signals to the main thread and refuses
    ``signal.signal`` from any other — thread-pool code that installs a
    SIGALRM handler raises ``ValueError`` at runtime, or worse, arms a
    timer whose handler interrupts an unrelated thread's main loop.  The
    per-point timeout belongs in a *process* pool worker (each worker's
    main thread), which is exactly what the parallel executor does.
    """

    id = "SIM208"
    summary = "signal.alarm/SIGALRM used from thread-pool code"

    _SIGNAL_TAILS = frozenset({"alarm", "setitimer", "signal"})

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    def check(self) -> None:
        threads = _reachable_functions(self.graph, "thread")
        if not threads:
            return
        in_scope = {m.name for m in self.modules()}
        for fq in sorted(threads):
            fn = self.graph.function(fq)
            if fn is None or fn.module.name not in in_scope:
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = fn.module.resolve(_dotted(node.func))
                tail = _terminal_name(node.func)
                if (
                    resolved
                    and resolved.startswith("signal.")
                    and tail in self._SIGNAL_TAILS
                ):
                    self.report(
                        fn.module,
                        node,
                        f"thread-reachable `{fn.qualname}` calls "
                        f"signal.{tail}: signals only work on the main "
                        "thread — move the timeout into a process-pool "
                        "worker or use a cooperative deadline",
                    )


# ---------------------------------------------------------------------------
# SIM209 — non-atomic file writes in experiments/
# ---------------------------------------------------------------------------


@register_contract
class AtomicWriteRule(ProjectRule):
    """SIM209: experiment outputs follow the tmp+fsync+``os.replace`` rule.

    The checkpoint store's whole crash-safety story is that a reader
    (including a resumed run after SIGKILL) only ever sees complete
    files.  Any experiment-layer write that opens the *final* path
    directly reintroduces torn files: a parallel worker or a killed run
    leaves a half-written JSON/CSV that a later resume happily reads.
    Write to a ``*.tmp`` sibling, ``fsync``, then ``os.replace``.
    """

    id = "SIM209"
    summary = "experiments/ file write bypasses atomic tmp+fsync+os.replace"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_subpackage("experiments")

    def check(self) -> None:
        for module in self.modules():
            for fn, nodes in _module_units(module):
                writes = [n for n in nodes if self._is_final_path_write(n)]
                if not writes:
                    continue
                if any(self._is_atomic_rename(n, module) for n in nodes):
                    continue
                for node in writes:
                    self.report(
                        module,
                        node,
                        "file opened for writing at its final path: a crash "
                        "or SIGKILL mid-write leaves a torn file that a "
                        "resumed run will read — write a .tmp sibling, "
                        "fsync, then os.replace (the Checkpoint pattern)",
                    )

    # -- helpers ---------------------------------------------------------

    def _is_final_path_write(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        tail = _terminal_name(node.func)
        if tail == "open":
            mode = self._mode_of(node)
            if mode is None or not mode.startswith(("w", "a", "x")):
                return False
            target = (
                node.func.value
                if isinstance(node.func, ast.Attribute)
                else (node.args[0] if node.args else None)
            )
            return not self._is_tmp_path(target)
        if tail in ("write_text", "write_bytes"):
            assert isinstance(node.func, ast.Attribute)
            return not self._is_tmp_path(node.func.value)
        return False

    @staticmethod
    def _mode_of(call: ast.Call) -> str | None:
        mode = _kwarg(call, "mode")
        if mode is None:
            args = call.args
            is_method = isinstance(call.func, ast.Attribute)
            index = 0 if is_method else 1
            mode = args[index] if len(args) > index else None
        if mode is None:
            return "r"  # open(path) defaults to read: not a write
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None  # dynamic mode: give the benefit of the doubt

    @staticmethod
    def _is_tmp_path(target: ast.expr | None) -> bool:
        if target is None:
            return False
        for sub in ast.walk(target):
            name = _terminal_name(sub)
            if name and "tmp" in _snake_words(name):
                return True
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                if "tmp" in sub.value or sub.value == os.devnull:
                    return True
        return False

    @staticmethod
    def _is_atomic_rename(node: ast.AST, module: ModuleInfo) -> bool:
        if not isinstance(node, ast.Call):
            return False
        resolved = module.resolve(_dotted(node.func))
        return resolved in ("os.replace", "os.rename")


# ---------------------------------------------------------------------------
# SIM210 — RNG state pickled into a worker
# ---------------------------------------------------------------------------


@register_contract
class PickledRngRule(ProjectRule):
    """SIM210: pass seeds across process boundaries, never Generators.

    Pickling a ``numpy.random.Generator`` into a pool task copies its
    state: every worker replays the *same* stream, and the parent's
    generator never advances — the sweep silently loses its independent
    replications and no longer matches the serial run.  Ship a seed (or
    a spawned ``SeedSequence``) and construct the Generator inside the
    worker.
    """

    id = "SIM210"
    summary = "RNG object pickled into a process-pool task; pass a seed"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    def check(self) -> None:
        from .flow import _build_scope

        for module in self.modules():
            kinds = _pool_kinds(module)
            for fn, nodes in _module_units(module):
                scope = _build_scope(fn, nodes, module)
                if not scope.rng_names:
                    continue
                for node in nodes:
                    if not isinstance(node, ast.Call):
                        continue
                    if not self._crosses_process(node, kinds):
                        continue
                    for name, via in self._rng_payloads(node, scope.rng_names):
                        self.report(
                            module,
                            node,
                            f"RNG `{name}` is pickled into a process-pool "
                            f"task{via}: every worker replays the same "
                            "stream and the parent's generator never "
                            "advances — pass a seed or spawned SeedSequence "
                            "and build the Generator in the worker",
                        )

    @staticmethod
    def _crosses_process(call: ast.Call, kinds: Mapping[str, str]) -> bool:
        tail = _terminal_name(call.func)
        if tail in _POOL_SUBMIT_TAILS and isinstance(call.func, ast.Attribute):
            receiver = call.func.value
            return (
                isinstance(receiver, ast.Name)
                and kinds.get(receiver.id) == "process"
            )
        return tail == "Process"

    @staticmethod
    def _rng_payloads(
        call: ast.Call, rng_names: set[str]
    ) -> list[tuple[str, str]]:
        payloads: list[tuple[str, str]] = []
        exprs: list[tuple[ast.expr, str]] = [(a, "") for a in call.args]
        exprs.extend((kw.value, "") for kw in call.keywords if kw.arg != "target")
        target = _kwarg(call, "target")
        for expr, _ in list(exprs):
            if isinstance(expr, ast.Tuple):
                exprs.extend((e, "") for e in expr.elts)
        for expr, _ in exprs:
            if isinstance(expr, ast.Name) and expr.id in rng_names:
                payloads.append((expr.id, ""))
            elif isinstance(expr, ast.Lambda):
                for sub in ast.walk(expr.body):
                    if isinstance(sub, ast.Name) and sub.id in rng_names:
                        payloads.append((sub.id, " (captured by a lambda)"))
            elif isinstance(expr, ast.Call) and _terminal_name(expr.func) == "partial":
                for sub in [*expr.args, *(kw.value for kw in expr.keywords)]:
                    if isinstance(sub, ast.Name) and sub.id in rng_names:
                        payloads.append((sub.id, " (bound via functools.partial)"))
        if target is not None:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name) and sub.id in rng_names:
                    payloads.append((sub.id, " (thread/process target closure)"))
        # dedupe, keep first mention
        seen: set[str] = set()
        out = []
        for name, via in payloads:
            if name not in seen:
                seen.add(name)
                out.append((name, via))
        return out


# ---------------------------------------------------------------------------
# SIM211 — await between read and write of shared async-server state
# ---------------------------------------------------------------------------


#: container methods that mutate their receiver in place (async-state rule).
_ASYNC_MUTATORS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popleft", "remove", "setdefault", "update",
    }
)


@register_contract
class AwaitSharedMutationRule(ProjectRule):
    """SIM211: a read→``await``→write of ``self`` state needs a lock.

    Every ``await`` is a scheduling point: another task (another socket
    connection in the serve front end) can run arbitrary handler code
    before control returns.  A coroutine that reads ``self.x``, awaits,
    then writes ``self.x`` from the stale read is the classic async
    lost-update — it works under every single-connection test and drops
    updates under concurrent load.  The rule flags the *write* when the
    read/await/write sequence is not protected, where protected means
    the read and the write both sit inside ``async with <lock>`` blocks
    (any context manager whose name mentions lock/mutex/semaphore) or
    the coroutine carries a ``single_writer`` decorator asserting that
    exactly one task ever runs it.

    Intra-statement forms are the same bug and are caught by event
    ordering: ``self.x += await f()`` and ``self.x = self.x + await f()``
    both read before the await and store after it.
    """

    id = "SIM211"
    summary = "await between read and write of shared async state without a lock"

    _LOCK_WORDS = frozenset({"lock", "mutex", "semaphore", "sem"})

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    def check(self) -> None:
        for module in self.modules():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    if not self._is_single_writer(node):
                        self._check_coroutine(module, node)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _is_single_writer(fn: ast.AsyncFunctionDef) -> bool:
        return any(
            _terminal_name(d) == "single_writer" for d in fn.decorator_list
        )

    def _is_lock_manager(self, item: ast.withitem) -> bool:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        tail = _terminal_name(expr)
        if tail is None:
            return False
        return bool(set(_snake_words(tail)) & self._LOCK_WORDS)

    @staticmethod
    def _self_attr(node: ast.expr) -> str | None:
        """``self.<attr>`` → attr name (through subscripts: self.d[k])."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _events(
        self, fn: ast.AsyncFunctionDef
    ) -> list[tuple[str, str | None, bool, ast.AST]]:
        """``(kind, attr, protected, node)`` in execution-ish order.

        Kinds: ``read``/``write``/``await``.  Events inside one statement
        are emitted value-before-target, so ``self.x = self.x + await f()``
        yields read, await, write — the order the interpreter runs them.
        Nested function definitions are opaque (their bodies get their own
        visit when they are themselves async).
        """
        events: list[tuple[str, str | None, bool, ast.AST]] = []

        def scan_expr(expr: ast.AST, protected: bool) -> None:
            for sub in ast.walk(expr):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(sub, ast.Await):
                    events.append(("await", None, protected, sub))
                elif isinstance(sub, ast.Attribute) and isinstance(
                    sub.ctx, ast.Load
                ):
                    attr = self._self_attr(sub)
                    if attr is not None:
                        events.append(("read", attr, protected, sub))
                elif isinstance(sub, ast.Call) and isinstance(
                    sub.func, ast.Attribute
                ):
                    if sub.func.attr in _ASYNC_MUTATORS:
                        attr = self._self_attr(sub.func.value)
                        if attr is not None:
                            events.append(("write", attr, protected, sub))

        def scan_stmt(stmt: ast.stmt, protected: bool) -> None:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return
            if isinstance(stmt, ast.AsyncWith):
                locked = protected or any(
                    self._is_lock_manager(item) for item in stmt.items
                )
                for item in stmt.items:
                    scan_expr(item.context_expr, protected)
                # entering an async context manager awaits __aenter__.
                events.append(("await", None, protected, stmt))
                for sub in stmt.body:
                    scan_stmt(sub, locked)
                return
            if isinstance(stmt, ast.Assign):
                scan_expr(stmt.value, protected)
                for target in stmt.targets:
                    attr = self._self_attr(target)
                    if attr is not None:
                        events.append(("write", attr, protected, stmt))
                return
            if isinstance(stmt, ast.AugAssign):
                attr = self._self_attr(stmt.target)
                if attr is not None:
                    events.append(("read", attr, protected, stmt.target))
                scan_expr(stmt.value, protected)
                if attr is not None:
                    events.append(("write", attr, protected, stmt))
                return
            # generic statement: expression parts first, then sub-blocks.
            for field in ast.iter_child_nodes(stmt):
                if isinstance(field, ast.stmt):
                    scan_stmt(field, protected)
                else:
                    scan_expr(field, protected)

        for stmt in fn.body:
            scan_stmt(stmt, False)
        return events

    def _check_coroutine(
        self, module: ModuleInfo, fn: ast.AsyncFunctionDef
    ) -> None:
        #: attr → node of the latest unprotected read still awaiting a write.
        pending: dict[str, ast.AST] = {}
        awaited: set[str] = set()
        reported: set[str] = set()
        for kind, attr, protected, node in self._events(fn):
            if kind == "await":
                awaited.update(pending)
            elif kind == "read":
                assert attr is not None
                if not protected:
                    pending.setdefault(attr, node)
            else:  # write
                assert attr is not None
                if (
                    not protected
                    and attr in pending
                    and attr in awaited
                    and attr not in reported
                ):
                    reported.add(attr)
                    self.report(
                        module,
                        node,
                        f"coroutine `{fn.name}` reads `self.{attr}`, awaits, "
                        "then writes it back: another task can interleave at "
                        "the await and this write clobbers its update — hold "
                        "an asyncio.Lock across the read-modify-write (async "
                        "with), or mark the coroutine @single_writer if only "
                        "one task ever runs it",
                    )
                # written (locked or not): later writes pair with later reads.
                pending.pop(attr, None)
                awaited.discard(attr)


# ---------------------------------------------------------------------------
# SIM212 — root SeedSequence shipped across a process boundary unspawned
# ---------------------------------------------------------------------------


#: receiver-name words that mark a Connection/pipe-like endpoint whose
#: ``.send(...)`` crosses a process boundary (the sharded coordinator's
#: transport).
_PIPE_WORDS = frozenset({"conn", "connection", "pipe", "chan", "channel"})


@register_contract
class UnspawnedSeedRule(ProjectRule):
    """SIM212: spawn before you ship — seed state crossing a process
    boundary must come from ``.spawn()``.

    SIM210 catches a ``Generator`` pickled into a pool task; the sharded
    dispatcher added a second way to lose stream independence: handing
    the *same* root ``SeedSequence`` to N shard workers.  Each worker
    then derives identical children — every shard's policy jitter and
    fault schedule replays the same stream, which is exactly the
    correlated-replication bug the coordinator's ``root.spawn(n)``
    fan-out exists to prevent.  The rule flags

    * a name bound to a direct ``SeedSequence(...)`` construction (and
      never rebound from a ``.spawn()`` result) appearing in a
      ``Process``/process-pool payload, and
    * a root ``SeedSequence`` *or* ``Generator`` name in a
      ``<conn>.send(...)`` on a pipe/connection-named receiver — the
      shard transport SIM210's pool patterns cannot see.

    Names unpacked from ``.spawn(...)`` are the sanctioned currency and
    are never reported.
    """

    id = "SIM212"
    summary = "root SeedSequence/Generator crosses a process boundary unspawned"

    def applies_module(self, module: ModuleInfo) -> bool:
        return module.ctx.in_library

    def check(self) -> None:
        from .flow import _build_scope

        for module in self.modules():
            kinds = _pool_kinds(module)
            for fn, nodes in _module_units(module):
                scope = _build_scope(fn, nodes, module)
                roots = self._root_seed_names(nodes)
                if not roots and not scope.rng_names:
                    continue
                for node in nodes:
                    if not isinstance(node, ast.Call):
                        continue
                    if PickledRngRule._crosses_process(node, kinds):
                        payloads = PickledRngRule._rng_payloads(node, roots)
                        for name, via in payloads:
                            self.report(
                                module,
                                node,
                                f"root SeedSequence `{name}` is shipped to a "
                                f"worker process{via}: every worker derives "
                                "identical child streams — call "
                                "`.spawn(n_workers)` once in the parent and "
                                "send one child per worker",
                            )
                    elif self._is_pipe_send(node):
                        names = roots | scope.rng_names
                        payloads = PickledRngRule._rng_payloads(node, names)
                        for name, via in payloads:
                            what = (
                                "root SeedSequence"
                                if name in roots
                                else "RNG"
                            )
                            self.report(
                                module,
                                node,
                                f"{what} `{name}` is sent over a process "
                                f"pipe{via}: the receiving worker gets a "
                                "copy of the parent's stream state — send a "
                                "`.spawn()` child (or a plain seed) instead",
                            )

    @staticmethod
    def _root_seed_names(nodes: list[ast.AST]) -> set[str]:
        """Names bound to a direct ``SeedSequence(...)`` construction.

        A name that is (also) ever bound from a ``.spawn(...)`` result —
        directly, via tuple/star unpack, or via a subscript of the
        returned list — is excluded: rebinding to spawned children is
        the fix this rule prescribes, so it must never re-trigger it.
        """
        roots: set[str] = set()
        spawned: set[str] = set()
        for node in nodes:
            if not isinstance(node, ast.Assign):
                continue
            names: list[str] = []
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Starred):
                            elt = elt.value
                        if isinstance(elt, ast.Name):
                            names.append(elt.id)
            if not names:
                continue
            mentions_spawn = any(
                isinstance(sub, ast.Call)
                and _terminal_name(sub.func) == "spawn"
                for sub in ast.walk(node.value)
            )
            if mentions_spawn:
                spawned.update(names)
            elif (
                isinstance(node.value, ast.Call)
                and _terminal_name(node.value.func) == "SeedSequence"
            ):
                roots.update(names)
        return roots - spawned

    @staticmethod
    def _is_pipe_send(call: ast.Call) -> bool:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "send"):
            return False
        receiver = _terminal_name(func.value)
        if receiver is None:
            return False
        return bool(set(_snake_words(receiver)) & _PIPE_WORDS)
