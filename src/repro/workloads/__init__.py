"""Workload substrate: distributions, arrival processes, traces, catalog."""

from .arrivals import (
    ArrivalProcess,
    MMPP2Arrivals,
    PoissonArrivals,
    RenewalArrivals,
    TraceArrivals,
    load_for_rate,
    rate_for_load,
)
from .catalog import WORKLOAD_NAMES, c90, ctc, get_workload, j90
from .distributions import (
    BoundedPareto,
    ConditionalDistribution,
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    Hyperexponential,
    Lognormal,
    Pareto,
    ScaledDistribution,
    ServiceDistribution,
    Weibull,
)
from .synthetic import (
    SyntheticWorkload,
    half_load_tail_fraction,
    half_load_tail_fraction_dist,
)
from .stats import (
    autocorrelation,
    index_of_dispersion,
    scv,
    trace_characterisation,
)
from .traces import SWF_FIELDS, Trace, TraceStats, read_swf, write_swf

__all__ = [
    "ArrivalProcess",
    "MMPP2Arrivals",
    "PoissonArrivals",
    "RenewalArrivals",
    "TraceArrivals",
    "load_for_rate",
    "rate_for_load",
    "WORKLOAD_NAMES",
    "c90",
    "ctc",
    "get_workload",
    "j90",
    "BoundedPareto",
    "ConditionalDistribution",
    "Deterministic",
    "Empirical",
    "Erlang",
    "Exponential",
    "Hyperexponential",
    "Lognormal",
    "Pareto",
    "ScaledDistribution",
    "ServiceDistribution",
    "Weibull",
    "SyntheticWorkload",
    "half_load_tail_fraction",
    "half_load_tail_fraction_dist",
    "autocorrelation",
    "index_of_dispersion",
    "scv",
    "trace_characterisation",
    "SWF_FIELDS",
    "Trace",
    "TraceStats",
    "read_swf",
    "write_swf",
]
