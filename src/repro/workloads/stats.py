"""Workload characterisation statistics.

The paper's conclusions lean on two workload properties: the variability
of job *sizes* (C², Table 1) and — in section 6 — the variability and
burstiness of the *arrival process*.  This module quantifies both for any
trace or sample:

* :func:`scv` — squared coefficient of variation of a sample;
* :func:`autocorrelation` — lag-k autocorrelation (sessions and bursty
  logs show strongly positive low-lag ACF; i.i.d. samples ≈ 0);
* :func:`index_of_dispersion` — variance/mean of arrival *counts* per
  window, the classical burstiness index (1 for Poisson, ≫1 for storms);
* :func:`trace_characterisation` — one dict with everything, for reports.
"""

from __future__ import annotations

import math

import numpy as np

from .traces import Trace

__all__ = [
    "scv",
    "autocorrelation",
    "index_of_dispersion",
    "trace_characterisation",
]


def scv(values) -> float:
    """Squared coefficient of variation ``Var/mean²`` of a sample."""
    v = np.asarray(values, dtype=float)
    if v.size < 2:
        raise ValueError("need at least two observations")
    m = float(np.mean(v))
    if m == 0.0:
        raise ValueError("mean is zero; SCV undefined")
    return float(np.var(v) / m**2)


def autocorrelation(values, lag: int = 1) -> float:
    """Lag-``k`` sample autocorrelation (Pearson, mean-removed)."""
    v = np.asarray(values, dtype=float)
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    if v.size <= lag + 1:
        raise ValueError(f"need more than {lag + 1} observations for lag {lag}")
    a = v[:-lag] - np.mean(v)
    b = v[lag:] - np.mean(v)
    denom = float(np.sum((v - np.mean(v)) ** 2))
    if denom == 0.0:
        return 0.0
    return float(np.sum(a * b) / denom)


def index_of_dispersion(arrival_times, window: float | None = None) -> float:
    """Variance-to-mean ratio of arrival counts in fixed windows.

    1 for a Poisson process; grows with burstiness.  ``window`` defaults
    to ten mean interarrival times (long enough to see clustering, short
    enough to give many windows).
    """
    t = np.asarray(arrival_times, dtype=float)
    if t.size < 20:
        raise ValueError("need at least 20 arrivals")
    span = float(t[-1] - t[0])
    if span <= 0:
        raise ValueError("arrivals must span positive time")
    if window is None:
        window = 10.0 * span / (t.size - 1)
    n_windows = int(span / window)
    if n_windows < 5:
        raise ValueError("window too large: fewer than 5 windows")
    edges = t[0] + window * np.arange(n_windows + 1)
    counts, _ = np.histogram(t, bins=edges)
    mean = float(np.mean(counts))
    if mean == 0.0:
        raise ValueError("no arrivals per window; enlarge the window")
    return float(np.var(counts) / mean)


def trace_characterisation(trace: Trace, acf_lags: tuple[int, ...] = (1, 10)) -> dict:
    """Everything the paper's arguments need, in one dict."""
    gaps = trace.interarrivals
    out = {
        "n_jobs": trace.n_jobs,
        "mean_service": trace.mean_service,
        "service_scv": scv(trace.service_times),
        "interarrival_scv": scv(gaps) if gaps.size >= 2 else math.nan,
        "dispersion": index_of_dispersion(trace.arrival_times)
        if trace.n_jobs >= 20
        else math.nan,
    }
    for lag in acf_lags:
        key = f"service_acf_lag{lag}"
        try:
            out[key] = autocorrelation(trace.service_times, lag)
        except ValueError:
            out[key] = math.nan
    return out
