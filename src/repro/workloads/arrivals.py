"""Arrival processes for the distributed-server simulator.

The paper's main experiments use a Poisson arrival process so every system
load in (0, 1) can be studied; section 6 repeats the comparison with the
*trace* interarrival times scaled to each target load, which yields a much
burstier stream.  We provide:

* :class:`PoissonArrivals` — the baseline memoryless process;
* :class:`RenewalArrivals` — i.i.d. interarrivals from any
  :class:`~repro.workloads.distributions.ServiceDistribution`, giving
  direct control over the interarrival squared coefficient of variation
  (SCV); a lognormal with SCV ≫ 1 is our stand-in for the bursty scaled
  trace of section 6;
* :class:`MMPP2Arrivals` — a two-state Markov-modulated Poisson process,
  the classical bursty-traffic model (alternating "storm" and "quiet"
  phases);
* :class:`TraceArrivals` — replay recorded arrival times, with load
  scaling exactly as the paper does ("interarrival times from the traces,
  scaled to create the appropriate load").

All processes expose ``rate`` (long-run arrivals per second) and
``sample_interarrivals(n, rng)``; :func:`rate_for_load` converts a target
system load into the arrival rate λ = ρ·h/E[X].
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from .distributions import (
    Lognormal,
    ScaledDistribution,
    ServiceDistribution,
    _as_rng,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "RenewalArrivals",
    "MMPP2Arrivals",
    "TraceArrivals",
    "rate_for_load",
    "load_for_rate",
]


def rate_for_load(load: float, n_hosts: int, mean_service: float) -> float:
    """Arrival rate λ such that system load is ``load`` on ``n_hosts`` hosts.

    System load is defined as ρ = λ·E[X] / h (fraction of total capacity
    busy in the long run), following the paper.
    """
    if not 0.0 < load:
        raise ValueError(f"load must be positive, got {load}")
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
    if mean_service <= 0:
        raise ValueError(f"mean_service must be positive, got {mean_service}")
    return load * n_hosts / mean_service


def load_for_rate(rate: float, n_hosts: int, mean_service: float) -> float:
    """Inverse of :func:`rate_for_load`."""
    return rate * mean_service / n_hosts


class ArrivalProcess(ABC):
    """A stationary point process of job arrivals."""

    @property
    @abstractmethod
    def rate(self) -> float:
        """Long-run arrival rate (jobs per unit time)."""

    @abstractmethod
    def sample_interarrivals(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw ``n`` consecutive interarrival times (positive floats)."""

    def sample_arrival_times(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw ``n`` arrival epochs starting from time 0 (cumulative sums)."""
        return np.cumsum(self.sample_interarrivals(n, rng))

    @abstractmethod
    def with_rate(self, rate: float) -> "ArrivalProcess":
        """Return a copy rescaled to a new long-run rate.

        Rescaling multiplies every interarrival time by a constant, so the
        *shape* (SCV, autocorrelation) of the process is preserved — this is
        the paper's load-scaling procedure.
        """


class PoissonArrivals(ArrivalProcess):
    """Poisson process with rate ``rate`` (interarrival SCV = 1)."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        return self._rate

    def sample_interarrivals(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        rng = _as_rng(rng)
        return rng.exponential(1.0 / self._rate, size=n)

    def with_rate(self, rate: float) -> "PoissonArrivals":
        return PoissonArrivals(rate)


class RenewalArrivals(ArrivalProcess):
    """Renewal process: i.i.d. interarrivals from ``interarrival_dist``.

    ``RenewalArrivals.bursty(rate, scv)`` builds a lognormal renewal process
    with the requested interarrival SCV — our synthetic stand-in for the
    scaled trace arrivals of section 6 (burstiness is the property that
    section appeals to).
    """

    def __init__(self, interarrival_dist: ServiceDistribution) -> None:
        self.dist = interarrival_dist

    @property
    def rate(self) -> float:
        return 1.0 / self.dist.mean

    @property
    def interarrival_scv(self) -> float:
        """SCV of the interarrival times (1 for Poisson, ≫1 means bursty)."""
        return self.dist.scv

    def sample_interarrivals(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return self.dist.sample(n, rng)

    def with_rate(self, rate: float) -> "RenewalArrivals":
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        scale = (1.0 / rate) / self.dist.mean
        # Rescale by constructing a scaled lognormal when possible, else a
        # generic scaled view via Empirical-free wrapper.
        if isinstance(self.dist, Lognormal):
            return RenewalArrivals(
                Lognormal(self.dist.mu_log + math.log(scale), self.dist.sigma_log)
            )
        return RenewalArrivals(ScaledDistribution(self.dist, scale))

    @classmethod
    def bursty(cls, rate: float, scv: float) -> "RenewalArrivals":
        """Lognormal renewal process with mean 1/rate and interarrival SCV ``scv``."""
        return cls(Lognormal.fit(1.0 / rate, scv))


class MMPP2Arrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The process alternates between phase 0 and phase 1; in phase ``i``
    arrivals are Poisson with rate ``rates[i]`` and the phase lasts an
    exponential time with mean ``1/switch_rates[i]``.  With one fast, long
    phase and one slow phase this produces the bursty, autocorrelated
    arrivals of a real submission log.

    Parameters
    ----------
    rates:
        Arrival rate in each of the two phases.
    switch_rates:
        Rate of leaving each phase (1 / mean sojourn).
    """

    def __init__(self, rates, switch_rates) -> None:
        r = np.asarray(rates, dtype=float)
        s = np.asarray(switch_rates, dtype=float)
        if r.shape != (2,) or s.shape != (2,):
            raise ValueError("rates and switch_rates must each have 2 entries")
        if np.any(r < 0) or np.any(s <= 0) or r.max() <= 0:
            raise ValueError("rates must be >= 0 (not both 0), switch_rates > 0")
        self.rates = r
        self.switch_rates = s

    @property
    def _stationary(self) -> np.ndarray:
        """Stationary probability of each phase."""
        # sojourn means are 1/s; time-stationary weights proportional to them
        w = 1.0 / self.switch_rates
        return w / w.sum()

    @property
    def rate(self) -> float:
        return float(np.dot(self._stationary, self.rates))

    @property
    def burstiness(self) -> float:
        """Ratio of peak to mean arrival rate (1 = Poisson-like)."""
        return float(self.rates.max() / self.rate)

    def sample_interarrivals(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        rng = _as_rng(rng)
        out = np.empty(n)
        filled = 0
        # Start in a phase drawn from the stationary distribution.
        phase = int(rng.random() < self._stationary[1])
        t_prev = 0.0
        t = 0.0
        phase_end = rng.exponential(1.0 / self.switch_rates[phase])
        while filled < n:
            lam = self.rates[phase]
            if lam > 0.0:
                # Arrivals in this phase form a Poisson process: draw them in
                # a block rather than one-by-one (vectorised hot path).
                remaining = phase_end - t
                expected = max(8, int(lam * remaining * 1.5) + 8)
                gaps = rng.exponential(1.0 / lam, size=min(expected, 4 * (n - filled) + 8))
                times = t + np.cumsum(gaps)
                times = times[times <= phase_end]
                for at in times:
                    out[filled] = at - t_prev
                    t_prev = at
                    filled += 1
                    if filled == n:
                        return out
                if times.size:
                    t = float(times[-1])
                # If the block under-shot the phase end, draw the next gap
                # one-by-one until we cross it.
                while True:
                    gap = rng.exponential(1.0 / lam)
                    if t + gap > phase_end:
                        break
                    t += gap
                    out[filled] = t - t_prev
                    t_prev = t
                    filled += 1
                    if filled == n:
                        return out
            t = phase_end
            phase = 1 - phase
            phase_end = t + rng.exponential(1.0 / self.switch_rates[phase])
        return out

    def with_rate(self, rate: float) -> "MMPP2Arrivals":
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        # Speed up / slow down time uniformly: multiplies all rates.
        c = rate / self.rate
        return MMPP2Arrivals(self.rates * c, self.switch_rates * c)

    @classmethod
    def bursty(
        cls,
        rate: float,
        peak_to_mean: float = 10.0,
        quiet_fraction: float = 0.9,
        burst_jobs: float = 50.0,
    ) -> "MMPP2Arrivals":
        """Construct an MMPP with a given overall rate and burst intensity.

        ``quiet_fraction`` of time is spent in a slow phase; the active
        phase runs at ``peak_to_mean`` times the mean rate and holds
        ``burst_jobs`` arrivals on average.  Long storms (large
        ``burst_jobs``) are what distinguish trace-like arrivals from an
        i.i.d. renewal process: during a sustained storm a dynamic policy
        can borrow every host's capacity while a static size split cannot
        (the paper's section-6 mechanism).
        """
        if not 0.0 < quiet_fraction < 1.0:
            raise ValueError("quiet_fraction must be in (0,1)")
        if burst_jobs <= 0:
            raise ValueError("burst_jobs must be positive")
        active_fraction = 1.0 - quiet_fraction
        if peak_to_mean > 1.0 / active_fraction:
            raise ValueError(
                "peak_to_mean cannot exceed 1/active_fraction "
                f"({1.0 / active_fraction:.3g})"
            )
        lam_active = rate * peak_to_mean
        # Remaining arrivals (if any) happen in the quiet phase.
        lam_quiet = (rate - lam_active * active_fraction) / quiet_fraction
        active_mean = burst_jobs / lam_active
        quiet_mean = active_mean * quiet_fraction / active_fraction
        return cls(
            [max(lam_quiet, 0.0), lam_active],
            [1.0 / quiet_mean, 1.0 / active_mean],
        )


class TraceArrivals(ArrivalProcess):
    """Replay recorded arrival epochs (optionally rescaled to a target rate).

    ``sample_interarrivals`` cycles through the recorded interarrivals
    starting from a random offset, which keeps the burstiness structure of
    the log while providing arbitrarily many arrivals.
    """

    def __init__(self, arrival_times) -> None:
        at = np.asarray(arrival_times, dtype=float)
        if at.ndim != 1 or at.size < 2:
            raise ValueError("need at least two arrival times")
        gaps = np.diff(at)
        if np.any(gaps < 0):
            raise ValueError("arrival times must be non-decreasing")
        self.interarrivals = gaps[gaps >= 0]

    @property
    def rate(self) -> float:
        return 1.0 / float(np.mean(self.interarrivals))

    @property
    def interarrival_scv(self) -> float:
        g = self.interarrivals
        return float(np.var(g) / np.mean(g) ** 2)

    def sample_interarrivals(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        rng = _as_rng(rng)
        m = self.interarrivals.size
        start = int(rng.integers(m))
        idx = (start + np.arange(n)) % m
        return self.interarrivals[idx]

    def with_rate(self, rate: float) -> "TraceArrivals":
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        scale = self.rate / rate
        t = TraceArrivals.__new__(TraceArrivals)
        t.interarrivals = self.interarrivals * scale
        return t
