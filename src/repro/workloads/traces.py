"""Job traces and the Standard Workload Format (SWF).

The paper is a *trace-driven* study: job service requirements come from
logs of the PSC Cray C90/J90 and the Cornell Theory Center IBM SP2 (the
latter via Feitelson's Parallel Workloads Archive, which distributes logs
in the Standard Workload Format).  This module provides:

* :class:`Trace` — an immutable in-memory job log (arrival epochs +
  service requirements + processor counts), with the manipulation the
  paper performs: load scaling, train/test splitting ("the cutoff ... was
  determined ... using half of the trace data.  The algorithms were then
  evaluated on the other half"), processor-count filtering ("we used only
  those CTC jobs that require 8 processors"), and Table-1 style summary
  statistics;
* :func:`read_swf` / :func:`write_swf` — a reader and writer for the
  Parallel Workloads Archive's SWF so real logs can be dropped in.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .distributions import Empirical

__all__ = ["Trace", "TraceStats", "read_swf", "write_swf", "SWF_FIELDS"]

#: The 18 standard SWF fields, in order.
SWF_FIELDS = (
    "job_number",
    "submit_time",
    "wait_time",
    "run_time",
    "allocated_processors",
    "average_cpu_time",
    "used_memory",
    "requested_processors",
    "requested_time",
    "requested_memory",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue_number",
    "partition_number",
    "preceding_job",
    "think_time",
)


@dataclass(frozen=True)
class TraceStats:
    """Table-1 style characteristics of a job log."""

    n_jobs: int
    duration: float
    mean_service: float
    min_service: float
    max_service: float
    scv: float

    def as_row(self) -> dict[str, float]:
        """Return the statistics as a flat dict (one Table-1 row)."""
        return {
            "n_jobs": self.n_jobs,
            "duration": self.duration,
            "mean_service": self.mean_service,
            "min_service": self.min_service,
            "max_service": self.max_service,
            "scv": self.scv,
        }


class Trace:
    """An in-memory job log: arrival epochs and service requirements.

    Parameters
    ----------
    arrival_times:
        Non-decreasing job submission epochs (seconds).
    service_times:
        Positive CPU service requirements (seconds).
    processors:
        Optional per-job processor counts (defaults to 1); used only for
        the paper's CTC filtering step.
    name:
        Optional label carried through reports.
    """

    def __init__(
        self,
        arrival_times,
        service_times,
        processors=None,
        name: str = "trace",
    ) -> None:
        at = np.asarray(arrival_times, dtype=float)
        st = np.asarray(service_times, dtype=float)
        if at.ndim != 1 or st.ndim != 1 or at.size != st.size or at.size == 0:
            raise ValueError("arrival and service times must be equal-length 1-D")
        if np.any(np.diff(at) < 0):
            raise ValueError("arrival times must be non-decreasing")
        if np.any(st <= 0) or not np.all(np.isfinite(st)):
            raise ValueError("service times must be positive and finite")
        if processors is None:
            procs = np.ones(at.size, dtype=int)
        else:
            procs = np.asarray(processors, dtype=int)
            if procs.shape != at.shape:
                raise ValueError("processors must match the number of jobs")
        self.arrival_times = at
        self.service_times = st
        self.processors = procs
        self.name = name

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def n_jobs(self) -> int:
        return self.arrival_times.size

    @property
    def duration(self) -> float:
        """Span of the submission log (first to last arrival)."""
        return float(self.arrival_times[-1] - self.arrival_times[0])

    @property
    def interarrivals(self) -> np.ndarray:
        return np.diff(self.arrival_times)

    @property
    def mean_service(self) -> float:
        return float(np.mean(self.service_times))

    def offered_load(self, n_hosts: int) -> float:
        """System load ρ = λ·E[X]/h implied by the trace's own arrival rate."""
        if self.n_jobs < 2 or self.duration <= 0:
            raise ValueError("need a trace with a positive time span")
        lam = (self.n_jobs - 1) / self.duration
        return lam * self.mean_service / n_hosts

    def service_distribution(self) -> Empirical:
        """Empirical distribution of the service requirements."""
        return Empirical(self.service_times)

    def stats(self) -> TraceStats:
        """Table-1 characteristics of this trace."""
        st = self.service_times
        mean = float(np.mean(st))
        scv = float(np.var(st) / mean**2)
        return TraceStats(
            n_jobs=self.n_jobs,
            duration=self.duration,
            mean_service=mean,
            min_service=float(np.min(st)),
            max_service=float(np.max(st)),
            scv=scv,
        )

    # ------------------------------------------------------------------
    # paper manipulations
    # ------------------------------------------------------------------

    def scaled_to_load(self, load: float, n_hosts: int) -> "Trace":
        """Rescale interarrival times so the offered load is ``load``.

        This is the paper's section-6 procedure: keep the service times and
        the arrival *pattern*, multiply all gaps by a constant.
        """
        if load <= 0:
            raise ValueError(f"load must be positive, got {load}")
        factor = self.offered_load(n_hosts) / load
        at0 = self.arrival_times[0]
        new_at = at0 + (self.arrival_times - at0) * factor
        return Trace(new_at, self.service_times, self.processors, name=self.name)

    def split(self, fraction: float = 0.5) -> tuple["Trace", "Trace"]:
        """Split into (train, test) by job order.

        Mirrors the paper's protocol: fit cutoffs on the first half,
        evaluate on the second half.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0,1), got {fraction}")
        cut = max(1, min(self.n_jobs - 1, int(round(self.n_jobs * fraction))))
        first = Trace(
            self.arrival_times[:cut],
            self.service_times[:cut],
            self.processors[:cut],
            name=f"{self.name}[:{cut}]",
        )
        second = Trace(
            self.arrival_times[cut:],
            self.service_times[cut:],
            self.processors[cut:],
            name=f"{self.name}[{cut}:]",
        )
        return first, second

    def filter_processors(self, n: int) -> "Trace":
        """Keep only jobs requesting exactly ``n`` processors (CTC step)."""
        mask = self.processors == n
        if not np.any(mask):
            raise ValueError(f"no jobs with {n} processors in {self.name}")
        return Trace(
            self.arrival_times[mask],
            self.service_times[mask],
            self.processors[mask],
            name=f"{self.name}(p={n})",
        )

    def head(self, n: int) -> "Trace":
        """First ``n`` jobs (cheap truncation for quick experiments)."""
        n = min(n, self.n_jobs)
        return Trace(
            self.arrival_times[:n],
            self.service_times[:n],
            self.processors[:n],
            name=self.name,
        )

    # ------------------------------------------------------------------
    # SWF I/O
    # ------------------------------------------------------------------

    @classmethod
    def from_swf(
        cls,
        path,
        name: str | None = None,
        min_runtime: float = 1e-9,
        on_error: str = "raise",
    ) -> "Trace":
        """Load a Standard Workload Format file (see :func:`read_swf`)."""
        return read_swf(path, name=name, min_runtime=min_runtime, on_error=on_error)

    def to_swf(self, path) -> None:
        """Write this trace as a minimal SWF file (see :func:`write_swf`)."""
        write_swf(self, path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(name={self.name!r}, n_jobs={self.n_jobs}, "
            f"mean_service={self.mean_service:.4g})"
        )


def read_swf(
    path,
    name: str | None = None,
    min_runtime: float = 1e-9,
    on_error: str = "raise",
) -> Trace:
    """Parse a Standard Workload Format file into a :class:`Trace`.

    Uses field 2 (submit time) as the arrival epoch, field 4 (run time) as
    the service requirement, and field 8 (requested processors, falling back
    to field 5, allocated) as the processor count.  Jobs with missing
    (``-1``) or non-positive runtimes are dropped, matching the standard
    cleaning step for archive logs.  Lines starting with ``;`` are header
    comments.

    ``on_error`` selects how *malformed* lines (too few fields, unparsable
    numbers) are handled: ``"raise"`` (default) aborts with the offending
    line and number; ``"skip"`` drops them and finishes with a single
    warning summarising how many lines were skipped and where the first
    few were — the lenient mode for real-world archive logs, which ship
    with truncated tails and stray text more often than one would hope.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    path = Path(path)
    arrivals: list[float] = []
    services: list[float] = []
    procs: list[int] = []
    skipped: list[int] = []

    def bad_line(lineno: int, reason: str) -> None:
        if on_error == "raise":
            raise ValueError(f"{path}:{lineno}: {reason}")
        skipped.append(lineno)

    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(";"):
                continue
            parts = line.split()
            if len(parts) < 5:
                bad_line(lineno, "expected >= 5 SWF fields")
                continue
            try:
                submit = float(parts[1])
                runtime = float(parts[3])
                requested = int(float(parts[7])) if len(parts) > 7 else -1
                allocated = int(float(parts[4]))
            except ValueError:
                bad_line(lineno, f"unparsable SWF fields in {line!r}")
                continue
            if runtime < min_runtime:
                continue
            arrivals.append(submit)
            services.append(runtime)
            procs.append(requested if requested > 0 else max(allocated, 1))
    if skipped:
        head = ", ".join(map(str, skipped[:5]))
        more = f", … ({len(skipped) - 5} more)" if len(skipped) > 5 else ""
        warnings.warn(
            f"{path}: skipped {len(skipped)} malformed SWF line(s) "
            f"(lines {head}{more})",
            RuntimeWarning,
            stacklevel=2,
        )
    if not arrivals:
        raise ValueError(f"{path}: no usable jobs")
    order = np.argsort(arrivals, kind="stable")
    arrivals_arr = np.asarray(arrivals)[order]
    services_arr = np.asarray(services)[order]
    procs_arr = np.asarray(procs)[order]
    return Trace(arrivals_arr, services_arr, procs_arr, name=name or path.stem)


def write_swf(trace: Trace, path) -> None:
    """Write a :class:`Trace` as SWF with the 18 standard fields.

    Unknown fields are written as ``-1`` per the SWF convention.
    """
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"; SWF written by repro — trace {trace.name}\n")
        fh.write(f"; MaxJobs: {trace.n_jobs}\n")
        fh.write("; Note: only submit_time, run_time and processors are meaningful\n")
        for i in range(trace.n_jobs):
            fields = [-1] * len(SWF_FIELDS)
            fields[0] = i + 1
            fields[1] = trace.arrival_times[i]
            fields[2] = -1  # wait time unknown until simulated
            fields[3] = trace.service_times[i]
            fields[4] = trace.processors[i]
            fields[7] = trace.processors[i]
            fields[10] = 1  # status: completed
            fh.write(
                " ".join(
                    f"{v:.6f}" if isinstance(v, float) else str(int(v))
                    for v in fields
                )
                + "\n"
            )
