"""Synthetic supercomputing traces calibrated to published statistics.

The PSC Cray C90/J90 logs the paper uses are proprietary, so the
reproduction substitutes synthetic traces whose *published* characteristics
(Table 1: number of jobs, mean service requirement, maximum, squared
coefficient of variation) are matched exactly by construction:

* service times are drawn from a :class:`~repro.workloads.distributions.BoundedPareto`
  fitted to (mean, SCV, max) with :meth:`BoundedPareto.fit` — the same
  family the paper's own analysis assumes for supercomputing workloads;
* arrival epochs come from any :class:`~repro.workloads.arrivals.ArrivalProcess`
  (Poisson by default; bursty processes reproduce section 6).

The generator also verifies the paper's key structural property — that a
tiny fraction of the largest jobs carries half the load ("half the total
load is made up by only the biggest 1.3 % of all the jobs") — via
:func:`half_load_tail_fraction`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .arrivals import ArrivalProcess, PoissonArrivals, rate_for_load
from .distributions import ServiceDistribution, _as_rng
from .traces import Trace

__all__ = [
    "SyntheticWorkload",
    "half_load_tail_fraction",
    "half_load_tail_fraction_dist",
]


def half_load_tail_fraction(service_times: np.ndarray) -> float:
    """Fraction of the *largest* jobs that together carry half the work.

    For the paper's C90 data this is ≈ 0.013 (1.3 % of jobs are half the
    load) — the structural heavy-tail fact behind SITA-U.
    """
    s = np.sort(np.asarray(service_times, dtype=float))[::-1]
    if s.size == 0:
        raise ValueError("empty service-time array")
    cum = np.cumsum(s)
    half = cum[-1] / 2.0
    k = int(np.searchsorted(cum, half)) + 1
    return k / s.size


def half_load_tail_fraction_dist(dist: ServiceDistribution, tol: float = 1e-10) -> float:
    """Analytic version of :func:`half_load_tail_fraction` for a distribution.

    Finds the size cutoff ``c`` with ``E[X; X > c] = E[X]/2`` by bisection
    and returns ``P(X > c)``.
    """
    lo = max(dist.lower, dist.ppf(1e-12), 1e-300)
    hi = dist.upper
    if not np.isfinite(hi):
        hi = dist.ppf(1.0 - 1e-12)
    target = dist.mean / 2.0

    def tail_load(c: float) -> float:
        return dist.partial_moment(1.0, c, dist.upper)

    for _ in range(200):
        mid = np.sqrt(lo * hi)  # geometric bisection: sizes span many decades
        if tail_load(mid) > target:
            lo = mid
        else:
            hi = mid
        if hi / lo - 1.0 < tol:
            break
    c = np.sqrt(lo * hi)
    return 1.0 - dist.cdf(c)


@dataclass(frozen=True)
class SyntheticWorkload:
    """A named synthetic workload: service distribution + arrival model.

    Instances are produced by :mod:`repro.workloads.catalog` with parameters
    calibrated to the paper's Table 1; :meth:`make_trace` materialises a
    reproducible :class:`~repro.workloads.traces.Trace`.
    """

    name: str
    service_dist: ServiceDistribution
    n_jobs: int
    description: str = ""

    def arrival_process(self, load: float, n_hosts: int) -> PoissonArrivals:
        """Poisson arrivals tuned so the system load is ``load``."""
        return PoissonArrivals(
            rate_for_load(load, n_hosts, self.service_dist.mean)
        )

    def make_trace(
        self,
        load: float,
        n_hosts: int,
        n_jobs: int | None = None,
        rng: np.random.Generator | int | None = None,
        arrivals: ArrivalProcess | None = None,
        session_length: float = 1.0,
        session_jitter: float = 0.1,
    ) -> Trace:
        """Generate a trace at system load ``load`` for ``n_hosts`` hosts.

        Parameters
        ----------
        load:
            Target system load ρ = λ·E[X]/h.
        n_hosts:
            Number of hosts the trace will be offered to (affects λ only).
        n_jobs:
            Number of jobs (defaults to the workload's calibrated count).
        rng:
            Seed or generator; service times and arrivals draw from it in a
            fixed order, so equal seeds give equal traces.
        arrivals:
            Optional replacement arrival process (e.g. bursty); it is
            rescaled to the rate implied by ``load``.
        session_length:
            Mean number of consecutive jobs per *user session* (geometric).
            With the default 1, sizes are i.i.d.  Larger values model the
            well-documented resubmission pattern of real logs: consecutive
            jobs share a session base size, so bursts carry many
            similar-sized jobs — the size dependency the paper points to
            when discussing when SITA suffers (§3.3) and the bursty
            arrivals of §6.
        session_jitter:
            Lognormal sigma of the within-session size variation.
        """
        rng = _as_rng(rng)
        n = n_jobs if n_jobs is not None else self.n_jobs
        if n < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n}")
        if session_length < 1.0:
            raise ValueError(f"session_length must be >= 1, got {session_length}")
        rate = rate_for_load(load, n_hosts, self.service_dist.mean)
        proc = arrivals.with_rate(rate) if arrivals is not None else PoissonArrivals(rate)
        arrival_times = proc.sample_arrival_times(n, rng)
        if session_length == 1.0:
            service_times = self.service_dist.sample(n, rng)
        else:
            service_times = self._sessionized_sizes(
                n, session_length, session_jitter, rng
            )
        return Trace(
            arrival_times,
            service_times,
            name=f"{self.name}(rho={load:g},h={n_hosts})",
        )

    def _sessionized_sizes(
        self,
        n: int,
        session_length: float,
        session_jitter: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sizes with session structure: geometric runs of a shared base.

        The marginal distribution stays (approximately, up to the small
        jitter) the calibrated one; only the *ordering* gains dependence.
        """
        p = 1.0 / session_length
        # Draw enough session bases, each repeated a geometric number of times.
        bases: list[float] = []
        lengths: list[int] = []
        total = 0
        while total < n:
            chunk = max(16, int((n - total) * p * 1.5) + 4)
            ls = rng.geometric(p, size=chunk)
            bs = self.service_dist.sample(chunk, rng)
            for b, l in zip(bs, ls):
                bases.append(float(b))
                lengths.append(int(l))
                total += int(l)
                if total >= n:
                    break
        sizes = np.repeat(np.asarray(bases), np.asarray(lengths))[:n]
        if session_jitter > 0.0:
            sizes = sizes * np.exp(rng.normal(0.0, session_jitter, size=n))
        # Respect hard support bounds (e.g. the CTC 12-hour cap).
        return np.clip(sizes, self.service_dist.lower * (1 + 1e-12) if self.service_dist.lower > 0 else 1e-12, self.service_dist.upper)

    def with_jobs(self, n_jobs: int) -> "SyntheticWorkload":
        """Copy of this workload with a different default job count."""
        return replace(self, n_jobs=n_jobs)

    def table1_row(self) -> dict[str, float]:
        """Analytic Table-1 row for this workload (distribution moments)."""
        d = self.service_dist
        return {
            "n_jobs": self.n_jobs,
            "mean_service": d.mean,
            "min_service": d.lower,
            "max_service": d.upper,
            "scv": d.scv,
            "half_load_tail_fraction": half_load_tail_fraction_dist(d),
        }
