"""The paper's three workloads, reconstructed from their published statistics.

Table 1 of the paper characterises three job logs:

========  ==================  ========  ============  =========  =====
system    duration            #jobs     mean service  max        C²
========  ==================  ========  ============  =========  =====
PSC C90   Jan–Dec 1997        ~55,000   ~4.6e3 s      ~2.2e6 s   ≈ 43
PSC J90   Jan–Dec 1997        ~10,000   ~6.5e3 s      ~1.8e6 s   ≈ 39
CTC SP2   Jul 1996–May 1997   ~8,500*   ~4.5e3 s      43,200 s   low
========  ==================  ========  ============  =========  =====

(*) 8-processor jobs only; runtimes capped at 12 h = 43,200 s because CTC
killed longer jobs.

The PSC logs are proprietary and the CTC log is not shipped offline, so
each catalog entry is a calibrated synthetic model (DESIGN.md §4):

* **C90 / J90** — a lognormal fitted to the published (mean, C²).  The
  lognormal family is the standard empirical model for supercomputing
  runtimes (Feitelson's workload-modelling line; the paper's own refs use
  lognormal/hyper-gamma bodies), and the fit reproduces the rest of
  Table 1 *for free*: at ~55k samples the expected minimum is ≈ 1 s and
  the expected maximum ≈ 2.1×10⁶ s (paper: 2.2×10⁶), and the largest
  ≈ 2.6 % of jobs carry half the load (paper: 1.3 %).  We verified a
  bounded Pareto *cannot* do this — matching (min=1 s, mean, C²) forces
  α ≈ 0.29, which floods the trace with sub-10-second jobs and erases the
  variance reduction SITA relies on, while matching (mean, C², max)
  forces min ≈ 750 s and erases the tiny jobs whose slowdown drives the
  fairness result.  The lognormal satisfies all four statistics at once
  and reproduces every qualitative comparison in the paper.
* **CTC** — a lognormal right-truncated at the 12-hour kill limit, with
  the *truncated* moments matching the targets
  (:meth:`~repro.workloads.distributions.Lognormal.fit_truncated`), which
  models the administrative cap literally.

``tests/workloads/test_catalog.py`` asserts the calibration targets and
the structural facts above.  A user holding the real logs can bypass the
catalog entirely::

    Trace.from_swf("CTC-SP2-1996-3.1-cln.swf").filter_processors(8)
"""

from __future__ import annotations

from functools import lru_cache

from .distributions import Lognormal
from .synthetic import SyntheticWorkload

__all__ = ["c90", "j90", "ctc", "get_workload", "WORKLOAD_NAMES"]

#: Names accepted by :func:`get_workload`.
WORKLOAD_NAMES = ("c90", "j90", "ctc")

#: the CTC 12-hour runtime kill limit, in seconds.
CTC_RUNTIME_CAP = 43_200.0


@lru_cache(maxsize=None)
def c90() -> SyntheticWorkload:
    """PSC Cray C90-like workload (the paper's headline dataset).

    Calibration targets: mean 4562.6 s, C² = 43 (quoted explicitly in
    paper §3.3).  The fitted lognormal's implied extremes over 54,962
    samples match Table 1's min/max, and the biggest ≈ 2.6 % of jobs
    carry half the load (paper: 1.3 %).
    """
    return SyntheticWorkload(
        name="c90",
        service_dist=Lognormal.fit(mean=4562.6, scv=43.0),
        n_jobs=54_962,
        description=(
            "PSC Cray C90 batch jobs, Jan-Dec 1997 (synthetic lognormal "
            "calibrated to the paper's Table 1)"
        ),
    )


@lru_cache(maxsize=None)
def j90() -> SyntheticWorkload:
    """PSC Cray J90-like workload (appendix B dataset).

    The paper reports the J90 results as "virtually identical" to the
    C90; we calibrate a slightly smaller machine's log: mean 6538.1 s,
    C² = 39.
    """
    return SyntheticWorkload(
        name="j90",
        service_dist=Lognormal.fit(mean=6538.1, scv=39.0),
        n_jobs=10_240,
        description=(
            "PSC Cray J90 batch jobs, Jan-Dec 1997 (synthetic lognormal "
            "calibrated to the paper's Table 1)"
        ),
    )


@lru_cache(maxsize=None)
def ctc() -> SyntheticWorkload:
    """CTC IBM SP2-like workload (appendix C dataset).

    8-processor jobs under the 12-hour kill limit: the observed runtimes
    are a lognormal right-truncated at 43,200 s.  Calibration: truncated
    mean 4520 s, truncated C² = 3.0 — "considerably lower variance" than
    the PSC logs (paper §2.1) while still skewed enough that the policy
    ordering persists (appendix C).
    """
    return SyntheticWorkload(
        name="ctc",
        service_dist=Lognormal.fit_truncated(
            mean=4520.0, scv=3.0, upper=CTC_RUNTIME_CAP
        ),
        n_jobs=8_567,
        description=(
            "CTC IBM SP2 8-processor jobs, Jul 1996-May 1997 (synthetic "
            "truncated lognormal with the 12-hour runtime cap)"
        ),
    )


def get_workload(name: str) -> SyntheticWorkload:
    """Look up a calibrated workload by name (``c90``, ``j90`` or ``ctc``)."""
    key = name.strip().lower()
    factories = {"c90": c90, "j90": j90, "ctc": ctc}
    try:
        return factories[key]()
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {WORKLOAD_NAMES}"
        ) from None
