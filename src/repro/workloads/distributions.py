"""Service-time distributions with full moment machinery.

Every task-assignment result in Schroeder & Harchol-Balter (HPDC 2000)
ultimately rests on moments of the job service-time distribution:

* the Pollaczek–Khinchine formula needs ``E[X]``, ``E[X^2]`` (and ``E[X^3]``
  for the second waiting-time moment);
* the slowdown metric needs the *inverse* moments ``E[1/X]`` and ``E[1/X^2]``
  (a job's waiting time is independent of its own size under FCFS/PASTA);
* SITA cutoff analysis needs *partial* moments ``E[X^j ; a < X <= b]`` so the
  per-host load and variability can be computed for any size interval.

This module provides an abstract :class:`ServiceDistribution` with exact
closed-form (or numerically exact) implementations of all of the above for
the distributions used in the paper and its surrounding literature:

* :class:`BoundedPareto` — the canonical heavy-tailed supercomputing
  workload model (used by the paper's own analysis, ref [11]);
* :class:`Pareto` — the unbounded variant (ref [10]);
* :class:`Exponential`, :class:`Hyperexponential`, :class:`Erlang` — the
  classical queueing models the paper contrasts against;
* :class:`Lognormal`, :class:`Weibull` — alternative empirical fits;
* :class:`Deterministic` — degenerate sanity-check distribution;
* :class:`Empirical` — an observed trace of service times (the paper's
  trace-driven mode).

All distributions are immutable and stateless; sampling takes an explicit
:class:`numpy.random.Generator` so experiments are reproducible.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
from scipy import optimize, special

__all__ = [
    "ServiceDistribution",
    "ScaledDistribution",
    "BoundedPareto",
    "Pareto",
    "Exponential",
    "Hyperexponential",
    "Erlang",
    "Lognormal",
    "Weibull",
    "Deterministic",
    "Empirical",
    "ConditionalDistribution",
]


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` to a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _quad_partial_moment(pdf, j: float, lo: float, hi: float, scale: float) -> float:
    """Quadrature fallback for ``∫ x^j pdf(x) dx`` on ``(lo, hi]``.

    Used where a family's closed-form incomplete-gamma identity does not
    apply (strongly negative ``j``).  ``scale`` bounds the effective upper
    integration limit for unbounded supports.
    """
    from scipy import integrate

    if math.isinf(hi):
        hi = lo + 50.0 * scale  # the exp tail beyond this is negligible
    val, _ = integrate.quad(lambda x: x**j * pdf(x), lo, hi, limit=200)
    return val


class ServiceDistribution(ABC):
    """A positive-valued job service-time distribution.

    Subclasses implement :meth:`moment`, :meth:`partial_moment`,
    :meth:`cdf`, :meth:`ppf`, :meth:`sample`, and the support bounds
    :attr:`lower` / :attr:`upper`.  Everything else (means, SCV, load
    fractions, conditional views) derives from those primitives.
    """

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def lower(self) -> float:
        """Infimum of the support (may be 0)."""

    @property
    @abstractmethod
    def upper(self) -> float:
        """Supremum of the support (``math.inf`` if unbounded)."""

    @abstractmethod
    def moment(self, j: float) -> float:
        """Return ``E[X^j]``.

        ``j`` may be negative (inverse moments) or fractional.  Raises
        :class:`ValueError` if the moment diverges.
        """

    @abstractmethod
    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        """Return the *unconditional* partial moment ``E[X^j ; lo < X <= hi]``.

        This is ``∫_{lo}^{hi} x^j dF(x)`` — mass-weighted, so
        ``partial_moment(0, lo, hi) == P(lo < X <= hi)`` and
        ``partial_moment(j, lower, upper) == moment(j)``.
        """

    @abstractmethod
    def cdf(self, x: float) -> float:
        """Return ``P(X <= x)``."""

    @abstractmethod
    def ppf(self, q: float) -> float:
        """Return the ``q``-quantile (inverse CDF), ``q`` in [0, 1]."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw ``n`` i.i.d. service times as a float array."""

    # ------------------------------------------------------------------
    # derived moments
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        """``E[X]``."""
        return self.moment(1)

    @property
    def second_moment(self) -> float:
        """``E[X^2]``."""
        return self.moment(2)

    @property
    def third_moment(self) -> float:
        """``E[X^3]``."""
        return self.moment(3)

    @property
    def variance(self) -> float:
        """``Var[X]``."""
        return self.second_moment - self.mean**2

    @property
    def scv(self) -> float:
        """Squared coefficient of variation ``C^2 = Var[X]/E[X]^2``.

        The paper reports ``C^2 ≈ 43`` for the PSC C90 trace, the key
        driver of every result.
        """
        return self.variance / self.mean**2

    @property
    def inverse_moment(self) -> float:
        """``E[1/X]`` — converts waiting time into waiting slowdown."""
        return self.moment(-1)

    @property
    def inverse_second_moment(self) -> float:
        """``E[1/X^2]`` — used for the variance of slowdown."""
        return self.moment(-2)

    # ------------------------------------------------------------------
    # interval machinery (the SITA workhorses)
    # ------------------------------------------------------------------

    def prob_interval(self, lo: float, hi: float) -> float:
        """``P(lo < X <= hi)``."""
        return self.partial_moment(0.0, lo, hi)

    def load_fraction(self, lo: float, hi: float) -> float:
        """Fraction of total *work* contributed by jobs in ``(lo, hi]``.

        SITA-E picks its cutoff so this equals ``1/h`` per interval; the
        paper's structural fact is that the top 1.3 % of C90 jobs carry a
        load fraction of one half.
        """
        return self.partial_moment(1.0, lo, hi) / self.mean

    def conditional(self, lo: float, hi: float) -> "ServiceDistribution":
        """Return the distribution of ``X`` conditioned on ``lo < X <= hi``.

        This is the service-time distribution *seen by one SITA host*.
        """
        return ConditionalDistribution(self, lo, hi)

    def scaled(self, factor: float) -> "ServiceDistribution":
        """Return the distribution of ``factor · X``.

        ``dist.scaled(1/v)`` is what a speed-``v`` host experiences.
        """
        return ScaledDistribution(self, factor)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """Return the Table-1 style characteristics of the distribution."""
        return {
            "mean": self.mean,
            "min": self.lower,
            "max": self.upper,
            "scv": self.scv,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{k}={v:.6g}" for k, v in vars(self).items() if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


# ----------------------------------------------------------------------
# Bounded Pareto
# ----------------------------------------------------------------------


class BoundedPareto(ServiceDistribution):
    """Bounded Pareto ``B(k, p, alpha)`` on ``[k, p]``.

    Density ``f(x) = alpha * k^alpha * x^{-alpha-1} / (1 - (k/p)^alpha)``.
    This is the distribution used throughout Harchol-Balter et al.'s SITA
    analysis [11]: heavy-tailed body with a finite maximum, so *all*
    moments (positive and negative) exist in closed form.

    Parameters
    ----------
    k:
        Smallest possible service time (> 0).
    p:
        Largest possible service time (> k).
    alpha:
        Tail exponent.  Supercomputing workloads empirically show
        ``alpha`` near 1 (very heavy-tailed).
    """

    def __init__(self, k: float, p: float, alpha: float) -> None:
        if not (k > 0 and p > k):
            raise ValueError(f"require 0 < k < p, got k={k}, p={p}")
        if alpha <= 0:
            raise ValueError(f"require alpha > 0, got {alpha}")
        self.k = float(k)
        self.p = float(p)
        self.alpha = float(alpha)
        # normalising constant: P(X >= x) uses k^alpha x^-alpha scaled by this
        self._norm = 1.0 - (self.k / self.p) ** self.alpha

    @property
    def lower(self) -> float:
        return self.k

    @property
    def upper(self) -> float:
        return self.p

    def moment(self, j: float) -> float:
        return self.partial_moment(j, self.k, self.p)

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        lo = max(float(lo), self.k)
        hi = min(float(hi), self.p)
        if hi <= lo:
            return 0.0
        a, k = self.alpha, self.k
        log_k = math.log(k)
        if abs(j - a) < 1e-12:
            c = a * math.exp(a * log_k) / self._norm
            return c * math.log(hi / lo)

        # c * (hi^{j-a} - lo^{j-a}) / (j-a) with c = a k^a / norm; combine the
        # k^a factor into each power term in log space so extreme alpha (the
        # fit routine probes alpha up to 50) cannot overflow a float.
        def term(x: float) -> float:
            e = a * log_k + (j - a) * math.log(x)
            return math.exp(e) if e > -745.0 else 0.0

        return a / (self._norm * (j - a)) * (term(hi) - term(lo))

    def cdf(self, x: float) -> float:
        if x < self.k:
            return 0.0
        if x >= self.p:
            return 1.0
        return (1.0 - (self.k / x) ** self.alpha) / self._norm

    def ppf(self, q: float) -> float:
        q = np.clip(q, 0.0, 1.0)
        # invert q = (1 - (k/x)^a) / norm
        inner = 1.0 - q * self._norm
        return self.k * inner ** (-1.0 / self.alpha)

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = _as_rng(rng)
        u = rng.random(n)
        inner = 1.0 - u * self._norm
        return self.k * inner ** (-1.0 / self.alpha)

    @classmethod
    def fit(cls, mean: float, scv: float, upper: float) -> "BoundedPareto":
        """Calibrate ``(k, alpha)`` to hit a target mean and SCV given ``p``.

        This is how the synthetic C90/J90/CTC workloads are matched to the
        paper's Table 1: we know the mean service requirement, the squared
        coefficient of variation and the maximum; we solve the two moment
        equations for the two free parameters.

        The solver is a nested bisection: for each candidate ``alpha`` the
        inner solve finds the (unique) ``k`` matching the mean — the mean is
        strictly increasing in ``k`` — and the outer solve adjusts ``alpha``
        to match the SCV, which is strictly decreasing in ``alpha`` at fixed
        mean (heavier tail, more variability).

        Raises
        ------
        ValueError
            If no bounded Pareto with the given ``upper`` can achieve the
            target moments.  The family's SCV is capped for a given
            ``upper/mean`` ratio (the alpha → 0 limit); e.g. with
            ``upper/mean ≈ 9.6`` the largest reachable SCV is ≈ 3.8.
        """
        if mean <= 0 or scv <= 0 or upper <= mean:
            raise ValueError("require mean > 0, scv > 0, upper > mean")
        m2_target = (scv + 1.0) * mean**2
        log_k_lo = math.log(upper) - 60.0
        log_k_hi = math.log(upper) - 1e-9

        def solve_k(alpha: float) -> float | None:
            """k matching the mean at this alpha, or None if unreachable."""

            def mean_err(log_k: float) -> float:
                return cls(math.exp(log_k), upper, alpha).mean - mean

            lo, hi = log_k_lo, log_k_hi
            if mean_err(lo) > 0.0:
                return None  # even the tiniest k gives too large a mean
            return optimize.brentq(mean_err, lo, hi, xtol=1e-13)

        def m2_err(alpha: float) -> float:
            log_k = solve_k(alpha)
            if log_k is None:
                return math.inf
            return cls(math.exp(log_k), upper, alpha).second_moment - m2_target

        alpha_lo, alpha_hi = 1e-4, 50.0
        err_lo = m2_err(alpha_lo)
        err_hi = m2_err(alpha_hi)
        if not (err_lo > 0.0 > err_hi) and not (err_lo < 0.0 < err_hi):
            max_scv = (m2_err(alpha_lo) + m2_target) / mean**2 - 1.0
            raise ValueError(
                f"could not fit BoundedPareto(mean={mean}, scv={scv}, "
                f"upper={upper}): reachable SCV range at this upper/mean "
                f"ratio tops out near {max_scv:.3g}"
            )
        alpha = optimize.brentq(m2_err, alpha_lo, alpha_hi, xtol=1e-12)
        log_k = solve_k(alpha)
        assert log_k is not None
        return cls(math.exp(log_k), upper, alpha)

    @classmethod
    def fit_min(cls, lower: float, mean: float, scv: float) -> "BoundedPareto":
        """Calibrate ``(alpha, p)`` to hit a target mean and SCV given ``k``.

        The alternative calibration: pin the *smallest* job size and let the
        maximum fall out of the moment equations.  This is the right mode
        for reproducing the paper: the direction of every SITA-U result —
        that underloading the short-job host is both slowdown-optimal and
        fair — is driven by the presence of very small jobs (large
        ``E[1/X]``), so the minimum must be honoured; the maximum is a
        single sample extreme with far less influence.

        Same nested-bisection strategy as :meth:`fit`: for fixed ``alpha``
        the mean is strictly increasing in ``p``; at the matched mean the
        SCV is strictly decreasing in ``alpha``.
        """
        if lower <= 0 or mean <= lower or scv <= 0:
            raise ValueError("require lower > 0, mean > lower, scv > 0")
        m2_target = (scv + 1.0) * mean**2
        log_p_lo = math.log(lower) + 1e-9
        log_p_hi = math.log(lower) + 80.0

        def solve_p(alpha: float) -> float | None:
            def mean_err(log_p: float) -> float:
                return cls(lower, math.exp(log_p), alpha).mean - mean

            if mean_err(log_p_hi) < 0.0:
                return None  # even a huge p cannot reach the mean
            return optimize.brentq(mean_err, log_p_lo, log_p_hi, xtol=1e-13)

        def m2_err(alpha: float) -> float:
            log_p = solve_p(alpha)
            if log_p is None:
                return math.inf
            return cls(lower, math.exp(log_p), alpha).second_moment - m2_target

        alpha_lo, alpha_hi = 1e-4, 50.0
        err_lo, err_hi = m2_err(alpha_lo), m2_err(alpha_hi)
        if not (err_lo > 0.0 > err_hi) and not (err_lo < 0.0 < err_hi):
            raise ValueError(
                f"could not fit BoundedPareto(lower={lower}, mean={mean}, "
                f"scv={scv}): target outside the family's reachable range"
            )
        alpha = optimize.brentq(m2_err, alpha_lo, alpha_hi, xtol=1e-12)
        log_p = solve_p(alpha)
        assert log_p is not None
        return cls(lower, math.exp(log_p), alpha)


class Pareto(ServiceDistribution):
    """Unbounded Pareto on ``[k, ∞)`` with tail exponent ``alpha``.

    ``P(X > x) = (k/x)^alpha``.  Moments ``E[X^j]`` exist only for
    ``j < alpha``; the paper's companion analysis [10] uses this model.
    """

    def __init__(self, k: float, alpha: float) -> None:
        if k <= 0 or alpha <= 0:
            raise ValueError(f"require k > 0 and alpha > 0, got k={k}, alpha={alpha}")
        self.k = float(k)
        self.alpha = float(alpha)

    @property
    def lower(self) -> float:
        return self.k

    @property
    def upper(self) -> float:
        return math.inf

    def moment(self, j: float) -> float:
        if j >= self.alpha:
            raise ValueError(
                f"E[X^{j}] diverges for Pareto with alpha={self.alpha}"
            )
        return self.alpha * self.k**j / (self.alpha - j)

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        lo = max(float(lo), self.k)
        hi = float(hi)
        if hi <= lo:
            return 0.0
        a, k = self.alpha, self.k
        c = a * k**a
        if math.isinf(hi):
            if j >= a:
                raise ValueError(f"partial moment to infinity diverges for j={j}")
            return c * lo ** (j - a) / (a - j)
        if abs(j - a) < 1e-12:
            return c * math.log(hi / lo)
        return c * (hi ** (j - a) - lo ** (j - a)) / (j - a)

    def cdf(self, x: float) -> float:
        if x < self.k:
            return 0.0
        return 1.0 - (self.k / x) ** self.alpha

    def ppf(self, q: float) -> float:
        q = np.clip(q, 0.0, 1.0 - 1e-15)
        return self.k * (1.0 - q) ** (-1.0 / self.alpha)

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = _as_rng(rng)
        u = rng.random(n)
        return self.k * (1.0 - u) ** (-1.0 / self.alpha)


# ----------------------------------------------------------------------
# Exponential family
# ----------------------------------------------------------------------


class Exponential(ServiceDistribution):
    """Exponential with given mean (``C^2 = 1``).

    The memoryless baseline: under exponential service times the classical
    result says Least-Work-Left is the best policy, which is exactly the
    regime the paper shows does *not* describe supercomputing workloads.
    """

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"require mean > 0, got {mean}")
        self.mu = float(mean)

    @property
    def lower(self) -> float:
        return 0.0

    @property
    def upper(self) -> float:
        return math.inf

    def moment(self, j: float) -> float:
        if j <= -1:
            raise ValueError(f"E[X^{j}] diverges for Exponential")
        return self.mu**j * special.gamma(j + 1.0)

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        lo = max(float(lo), 0.0)
        if hi <= lo:
            return 0.0
        if j <= -1 and lo == 0.0:
            raise ValueError(f"partial moment with j={j} diverges at 0")
        # E[X^j; lo<X<=hi] = mu^j [ Γ(j+1, lo/mu) - Γ(j+1, hi/mu) ] with
        # upper incomplete gamma; use gammaincc (regularised upper).
        a = j + 1.0
        if a <= 0.0:
            # Incomplete-gamma identities need a > 0; away from 0 the
            # integral is finite, so fall back to quadrature.
            return _quad_partial_moment(
                lambda x: math.exp(-x / self.mu) / self.mu, j, lo, hi, self.mu
            )
        scale = self.mu**j * special.gamma(a)
        top = 0.0 if math.isinf(hi) else special.gammaincc(a, hi / self.mu)
        return scale * (special.gammaincc(a, lo / self.mu) - top)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return 1.0 - math.exp(-x / self.mu)

    def ppf(self, q: float) -> float:
        q = np.clip(q, 0.0, 1.0 - 1e-15)
        return -self.mu * math.log(1.0 - q)

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = _as_rng(rng)
        return rng.exponential(self.mu, size=n)


class Hyperexponential(ServiceDistribution):
    """Mixture of exponentials — the standard high-variability (C² > 1) model.

    Parameters
    ----------
    probs:
        Branch probabilities (sum to 1).
    means:
        Mean of the exponential in each branch.
    """

    def __init__(self, probs, means) -> None:
        p = np.asarray(probs, dtype=float)
        m = np.asarray(means, dtype=float)
        if p.shape != m.shape or p.ndim != 1 or p.size == 0:
            raise ValueError("probs and means must be equal-length 1-D arrays")
        if not math.isclose(p.sum(), 1.0, rel_tol=1e-9):
            raise ValueError(f"probs must sum to 1, got {p.sum()}")
        if np.any(p < 0) or np.any(m <= 0):
            raise ValueError("probs must be >= 0 and means > 0")
        self.probs = p
        self.means = m

    @property
    def lower(self) -> float:
        return 0.0

    @property
    def upper(self) -> float:
        return math.inf

    def moment(self, j: float) -> float:
        if j <= -1:
            raise ValueError(f"E[X^{j}] diverges for Hyperexponential")
        return float(np.sum(self.probs * self.means**j) * special.gamma(j + 1.0))

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        total = 0.0
        for p, m in zip(self.probs, self.means):
            total += p * Exponential(m).partial_moment(j, lo, hi)
        return total

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return float(np.sum(self.probs * (1.0 - np.exp(-x / self.means))))

    def ppf(self, q: float) -> float:
        q = float(np.clip(q, 0.0, 1.0 - 1e-15))
        if q <= 0.0:
            return 0.0
        hi = float(np.max(self.means)) * max(1.0, -math.log(1.0 - q)) * 2.0 + 1.0
        while self.cdf(hi) < q:
            hi *= 2.0
        return optimize.brentq(lambda x: self.cdf(x) - q, 0.0, hi, xtol=1e-12)

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = _as_rng(rng)
        branch = rng.choice(self.probs.size, size=n, p=self.probs)
        return rng.exponential(self.means[branch])

    @classmethod
    def fit_balanced(cls, mean: float, scv: float) -> "Hyperexponential":
        """Two-phase H2 with balanced means matching a target mean and SCV ≥ 1.

        Uses the standard balanced-means construction: ``p1*m1 = p2*m2``.
        """
        if scv < 1.0:
            raise ValueError(f"H2 requires scv >= 1, got {scv}")
        if scv == 1.0:
            return cls([0.5, 0.5], [mean, mean])
        r = math.sqrt((scv - 1.0) / (scv + 1.0))
        p1 = (1.0 + r) / 2.0
        p2 = 1.0 - p1
        m1 = mean / (2.0 * p1)
        m2 = mean / (2.0 * p2)
        return cls([p1, p2], [m1, m2])


class Erlang(ServiceDistribution):
    """Erlang-``n`` (sum of ``n`` i.i.d. exponentials), ``C^2 = 1/n``.

    Low-variability model; also the *interarrival* distribution seen by one
    host under Round-Robin splitting of a Poisson stream (E_h/G/1).
    """

    def __init__(self, n: int, mean: float) -> None:
        if n < 1 or int(n) != n:
            raise ValueError(f"require integer n >= 1, got {n}")
        if mean <= 0:
            raise ValueError(f"require mean > 0, got {mean}")
        self.n = int(n)
        self.mu = float(mean)  # overall mean; each stage has mean mu/n

    @property
    def lower(self) -> float:
        return 0.0

    @property
    def upper(self) -> float:
        return math.inf

    def moment(self, j: float) -> float:
        if j <= -self.n:
            raise ValueError(f"E[X^{j}] diverges for Erlang-{self.n}")
        stage = self.mu / self.n
        return stage**j * special.gamma(self.n + j) / special.gamma(self.n)

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        lo = max(float(lo), 0.0)
        if hi <= lo:
            return 0.0
        a = self.n + j
        stage = self.mu / self.n
        if a <= 0:
            if lo == 0.0:
                raise ValueError(f"partial moment with j={j} diverges at 0")
            norm = stage**self.n * special.gamma(self.n)
            return _quad_partial_moment(
                lambda x: x ** (self.n - 1) * math.exp(-x / stage) / norm,
                j, lo, hi, stage,
            )
        scale = stage**j * special.gamma(a) / special.gamma(self.n)
        top = 0.0 if math.isinf(hi) else special.gammaincc(a, hi / stage)
        return scale * (special.gammaincc(a, lo / stage) - top)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return float(special.gammainc(self.n, x * self.n / self.mu))

    def ppf(self, q: float) -> float:
        q = float(np.clip(q, 0.0, 1.0 - 1e-15))
        return float(special.gammaincinv(self.n, q) * self.mu / self.n)

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = _as_rng(rng)
        return rng.gamma(self.n, self.mu / self.n, size=n)


# ----------------------------------------------------------------------
# Lognormal / Weibull
# ----------------------------------------------------------------------


class Lognormal(ServiceDistribution):
    """Lognormal with underlying normal parameters ``mu_log``, ``sigma_log``."""

    def __init__(self, mu_log: float, sigma_log: float) -> None:
        if sigma_log <= 0:
            raise ValueError(f"require sigma_log > 0, got {sigma_log}")
        self.mu_log = float(mu_log)
        self.sigma_log = float(sigma_log)

    @property
    def lower(self) -> float:
        return 0.0

    @property
    def upper(self) -> float:
        return math.inf

    def moment(self, j: float) -> float:
        return math.exp(j * self.mu_log + 0.5 * j**2 * self.sigma_log**2)

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        lo = max(float(lo), 0.0)
        if hi <= lo:
            return 0.0

        def phi_arg(x: float) -> float:
            return (math.log(x) - self.mu_log - j * self.sigma_log**2) / self.sigma_log

        top = 1.0 if math.isinf(hi) else special.ndtr(phi_arg(hi))
        bot = 0.0 if lo == 0.0 else special.ndtr(phi_arg(lo))
        return self.moment(j) * (top - bot)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return float(special.ndtr((math.log(x) - self.mu_log) / self.sigma_log))

    def ppf(self, q: float) -> float:
        q = float(np.clip(q, 1e-15, 1.0 - 1e-15))
        return math.exp(self.mu_log + self.sigma_log * special.ndtri(q))

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = _as_rng(rng)
        return rng.lognormal(self.mu_log, self.sigma_log, size=n)

    @classmethod
    def fit(cls, mean: float, scv: float) -> "Lognormal":
        """Match a target mean and squared coefficient of variation."""
        if mean <= 0 or scv <= 0:
            raise ValueError("require mean > 0 and scv > 0")
        sigma2 = math.log(1.0 + scv)
        mu = math.log(mean) - sigma2 / 2.0
        return cls(mu, math.sqrt(sigma2))

    @classmethod
    def fit_truncated(
        cls, mean: float, scv: float, upper: float
    ) -> "ConditionalDistribution":
        """A lognormal truncated at ``upper`` matching the target mean and SCV.

        Models administratively capped runtimes — the CTC SP2 killed jobs
        at 12 hours, so observed runtimes are a right-truncated version of
        the underlying demand distribution.  Solves for the base
        ``(mu, sigma)`` such that the *truncated* moments hit the targets.
        """
        if mean <= 0 or scv <= 0 or upper <= mean:
            raise ValueError("require mean > 0, scv > 0, upper > mean")
        m2_target = (scv + 1.0) * mean**2

        # Nested bisection (same strategy as the BoundedPareto fits): at
        # fixed sigma the truncated mean is increasing in mu, and at the
        # matched mean the truncated SCV is increasing in sigma (up to a
        # plateau — the family's SCV is capped by the truncation point).
        def solve_mu(sigma: float) -> float:
            def mean_err(mu: float) -> float:
                base = cls(mu, sigma)
                if base.cdf(upper) <= 1e-300:
                    # All mass beyond the cap: the truncated mean limits to
                    # the cap itself, so the error is its positive extreme.
                    return upper - mean
                d = ConditionalDistribution(base, 0.0, upper)
                return d.mean - mean

            return optimize.brentq(mean_err, -40.0, 60.0, xtol=1e-12)

        def m2_err(sigma: float) -> float:
            d = ConditionalDistribution(cls(solve_mu(sigma), sigma), 0.0, upper)
            return d.second_moment - m2_target

        sigma_lo, sigma_hi = 1e-3, 8.0
        if m2_err(sigma_lo) > 0.0:
            raise ValueError(
                f"truncated Lognormal cannot have SCV as low as {scv} here"
            )
        if m2_err(sigma_hi) < 0.0:
            reachable = (m2_err(sigma_hi) + m2_target) / mean**2 - 1.0
            raise ValueError(
                f"could not fit truncated Lognormal(mean={mean}, scv={scv}, "
                f"upper={upper}): the truncation caps the reachable SCV "
                f"near {reachable:.3g}"
            )
        sigma = optimize.brentq(m2_err, sigma_lo, sigma_hi, xtol=1e-12)
        return ConditionalDistribution(cls(solve_mu(sigma), sigma), 0.0, upper)


class Weibull(ServiceDistribution):
    """Weibull with scale ``lam`` and shape ``k_shape`` (heavy-tailed for k<1)."""

    def __init__(self, lam: float, k_shape: float) -> None:
        if lam <= 0 or k_shape <= 0:
            raise ValueError("require lam > 0 and k_shape > 0")
        self.lam = float(lam)
        self.k_shape = float(k_shape)

    @property
    def lower(self) -> float:
        return 0.0

    @property
    def upper(self) -> float:
        return math.inf

    def moment(self, j: float) -> float:
        if j <= -self.k_shape:
            raise ValueError(f"E[X^{j}] diverges for Weibull(k={self.k_shape})")
        return self.lam**j * special.gamma(1.0 + j / self.k_shape)

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        lo = max(float(lo), 0.0)
        if hi <= lo:
            return 0.0
        a = 1.0 + j / self.k_shape
        if a <= 0:
            if lo == 0.0:
                raise ValueError(f"partial moment with j={j} diverges at 0")
            k, lam = self.k_shape, self.lam

            def pdf(x: float) -> float:
                return (k / lam) * (x / lam) ** (k - 1.0) * math.exp(-((x / lam) ** k))

            return _quad_partial_moment(pdf, j, lo, hi, lam)
        scale = self.lam**j * special.gamma(a)
        z_lo = (lo / self.lam) ** self.k_shape
        top = 0.0 if math.isinf(hi) else special.gammaincc(a, (hi / self.lam) ** self.k_shape)
        return scale * (special.gammaincc(a, z_lo) - top)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return 1.0 - math.exp(-((x / self.lam) ** self.k_shape))

    def ppf(self, q: float) -> float:
        q = float(np.clip(q, 0.0, 1.0 - 1e-15))
        return self.lam * (-math.log(1.0 - q)) ** (1.0 / self.k_shape)

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = _as_rng(rng)
        return self.lam * rng.weibull(self.k_shape, size=n)


class Deterministic(ServiceDistribution):
    """All jobs take exactly ``value`` seconds (``C^2 = 0``)."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"require value > 0, got {value}")
        self.value = float(value)

    @property
    def lower(self) -> float:
        return self.value

    @property
    def upper(self) -> float:
        return self.value

    def moment(self, j: float) -> float:
        return self.value**j

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        if lo < self.value <= hi:
            return self.value**j
        return 0.0

    def cdf(self, x: float) -> float:
        return 1.0 if x >= self.value else 0.0

    def ppf(self, q: float) -> float:
        return self.value

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        return np.full(n, self.value)


# ----------------------------------------------------------------------
# Empirical (trace-driven)
# ----------------------------------------------------------------------


class Empirical(ServiceDistribution):
    """The empirical distribution of an observed array of service times.

    This is the paper's trace-driven mode: all moments, partial moments and
    quantiles are computed from the sample, and :meth:`sample` resamples
    with replacement.
    """

    def __init__(self, values) -> None:
        v = np.asarray(values, dtype=float)
        if v.ndim != 1 or v.size == 0:
            raise ValueError("values must be a non-empty 1-D array")
        if np.any(v <= 0) or not np.all(np.isfinite(v)):
            raise ValueError("service times must be positive and finite")
        self.values = np.sort(v)

    @property
    def n(self) -> int:
        """Number of observations."""
        return self.values.size

    @property
    def lower(self) -> float:
        return float(self.values[0])

    @property
    def upper(self) -> float:
        return float(self.values[-1])

    def moment(self, j: float) -> float:
        return float(np.mean(self.values**j))

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        i0 = int(np.searchsorted(self.values, lo, side="right"))
        i1 = int(np.searchsorted(self.values, hi, side="right"))
        if i1 <= i0:
            return 0.0
        return float(np.sum(self.values[i0:i1] ** j)) / self.n

    def cdf(self, x: float) -> float:
        return float(np.searchsorted(self.values, x, side="right")) / self.n

    def ppf(self, q: float) -> float:
        q = float(np.clip(q, 0.0, 1.0))
        idx = min(self.n - 1, max(0, math.ceil(q * self.n) - 1))
        return float(self.values[idx])

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = _as_rng(rng)
        return rng.choice(self.values, size=n, replace=True)

    def conditional(self, lo: float, hi: float) -> "ServiceDistribution":
        i0 = int(np.searchsorted(self.values, lo, side="right"))
        i1 = int(np.searchsorted(self.values, hi, side="right"))
        if i1 <= i0:
            raise ValueError(f"no observations in ({lo}, {hi}]")
        return Empirical(self.values[i0:i1])


# ----------------------------------------------------------------------
# Conditional view
# ----------------------------------------------------------------------


class ScaledDistribution(ServiceDistribution):
    """``c · X`` for a positive constant ``c``.

    The service-time distribution seen by a host of speed ``1/c``: a job
    of nominal size ``x`` occupies a speed-``v`` host for ``x/v`` seconds,
    so the host's M/G/1 analysis runs on ``X/v = ScaledDistribution(X, 1/v)``.
    Also obtainable as :meth:`ServiceDistribution.scaled`.
    """

    def __init__(self, parent: ServiceDistribution, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.parent = parent
        self.scale = float(scale)

    @property
    def lower(self) -> float:
        return self.parent.lower * self.scale

    @property
    def upper(self) -> float:
        return self.parent.upper * self.scale

    def moment(self, j: float) -> float:
        return self.scale**j * self.parent.moment(j)

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        return self.scale**j * self.parent.partial_moment(
            j, lo / self.scale, hi / self.scale
        )

    def cdf(self, x: float) -> float:
        return self.parent.cdf(x / self.scale)

    def ppf(self, q: float) -> float:
        return self.scale * self.parent.ppf(q)

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        return self.scale * self.parent.sample(n, rng)


class ConditionalDistribution(ServiceDistribution):
    """``X | lo < X <= hi`` for an arbitrary parent distribution.

    Moments come from the parent's partial moments; sampling uses inverse-CDF
    restricted to the interval.  This is what a single SITA host "sees".
    """

    def __init__(self, parent: ServiceDistribution, lo: float, hi: float) -> None:
        lo = max(float(lo), 0.0)
        hi = float(hi)
        mass = parent.prob_interval(lo, hi)
        if mass <= 0.0:
            raise ValueError(f"interval ({lo}, {hi}] has zero probability")
        self.parent = parent
        self.lo = lo
        self.hi = hi
        self.mass = mass
        self._q_lo = parent.cdf(lo)
        self._q_hi = parent.cdf(hi) if not math.isinf(hi) else 1.0

    @property
    def lower(self) -> float:
        return max(self.lo, self.parent.lower)

    @property
    def upper(self) -> float:
        return min(self.hi, self.parent.upper)

    def moment(self, j: float) -> float:
        return self.parent.partial_moment(j, self.lo, self.hi) / self.mass

    def partial_moment(self, j: float, lo: float, hi: float) -> float:
        lo = max(float(lo), self.lo)
        hi = min(float(hi), self.hi)
        if hi <= lo:
            return 0.0
        return self.parent.partial_moment(j, lo, hi) / self.mass

    def cdf(self, x: float) -> float:
        if x <= self.lo:
            return 0.0
        if x >= self.hi:
            return 1.0
        return (self.parent.cdf(x) - self._q_lo) / self.mass

    def ppf(self, q: float) -> float:
        q = float(np.clip(q, 0.0, 1.0))
        return self.parent.ppf(self._q_lo + q * (self._q_hi - self._q_lo))

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = _as_rng(rng)
        if self.mass >= 0.05:
            # Rejection sampling: draw from the parent in vectorised blocks
            # and keep the in-interval values — far faster than per-element
            # inverse-CDF when the interval holds most of the mass (the
            # truncated-lognormal CTC workload keeps > 90 %).
            out = np.empty(n)
            filled = 0
            while filled < n:
                block = self.parent.sample(
                    max(64, int((n - filled) / self.mass * 1.2)), rng
                )
                keep = block[(block > self.lo) & (block <= self.hi)]
                take = min(keep.size, n - filled)
                out[filled : filled + take] = keep[:take]
                filled += take
            return out
        u = self._q_lo + rng.random(n) * (self._q_hi - self._q_lo)
        return np.asarray([self.parent.ppf(q) for q in u])
