"""repro — task assignment policies for supercomputing servers.

A full reproduction of Schroeder & Harchol-Balter, *"Evaluation of Task
Assignment Policies for Supercomputing Servers: The Case for Load
Unbalancing and Fairness"* (HPDC 2000 / Cluster Computing 7, 2004):

* a trace-driven discrete-event simulator of a distributed server
  (dispatcher + FCFS run-to-completion hosts), with vectorised fast paths
  (:mod:`repro.sim`);
* the task assignment policies — Random, Round-Robin, Shortest-Queue,
  Least-Work-Left, Central-Queue, SITA-E, and the paper's load-unbalancing
  SITA-U-opt / SITA-U-fair, plus TAGS (:mod:`repro.core`);
* the queueing analysis (M/G/1 Pollaczek–Khinchine, M/G/h, E_h/G/1,
  per-slice SITA analysis) used to derive cutoffs and validate the
  simulations (:mod:`repro.analysis`);
* calibrated synthetic supercomputing workloads, SWF trace I/O, arrival
  processes (:mod:`repro.workloads`);
* one experiment driver per paper table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro import c90, simulate, SITAPolicy, fair_cutoff

    workload = c90()
    trace = workload.make_trace(load=0.7, n_hosts=2, n_jobs=50_000, rng=0)
    cutoff = fair_cutoff(0.7, workload.service_dist)
    result = simulate(trace, SITAPolicy([cutoff], name="sita-u-fair"), n_hosts=2)
    print(result.summary(warmup_fraction=0.05).mean_slowdown)
"""

from .analysis import (
    analyze_sita,
    predict_grouped_sita,
    mg1_metrics,
    mgh_metrics,
    mmh_metrics,
    predict_lwl,
    predict_random,
    predict_round_robin,
    predict_sita,
)
from .core import (
    CentralQueuePolicy,
    EstimatedLWLPolicy,
    GroupedSITAPolicy,
    LeastWorkLeftPolicy,
    Policy,
    RandomPolicy,
    RoundRobinPolicy,
    SITAPolicy,
    ShortestQueuePolicy,
    TAGSPolicy,
    analytic_cutoff_pair,
    equal_load_cutoffs,
    fair_cutoff,
    fairness_gap,
    opt_cutoff,
    rule_of_thumb_cutoff,
    rule_of_thumb_fraction,
    sim_cutoff_pair,
    sim_fair_cutoff,
    sim_opt_cutoff,
    slowdown_profile,
)
from .experiments import (
    ExperimentConfig,
    ExperimentResult,
    list_experiments,
    run_experiment,
)
from .sim import (
    DistributedServer,
    SimulationResult,
    Simulator,
    Summary,
    simulate,
    simulate_fast,
)
from .workloads import (
    BoundedPareto,
    Empirical,
    Exponential,
    PoissonArrivals,
    ServiceDistribution,
    SyntheticWorkload,
    Trace,
    c90,
    ctc,
    get_workload,
    j90,
)

__version__ = "1.0.0"

__all__ = [
    "analyze_sita",
    "predict_grouped_sita",
    "mg1_metrics",
    "mgh_metrics",
    "mmh_metrics",
    "predict_lwl",
    "predict_random",
    "predict_round_robin",
    "predict_sita",
    "CentralQueuePolicy",
    "EstimatedLWLPolicy",
    "GroupedSITAPolicy",
    "LeastWorkLeftPolicy",
    "Policy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SITAPolicy",
    "ShortestQueuePolicy",
    "TAGSPolicy",
    "analytic_cutoff_pair",
    "equal_load_cutoffs",
    "fair_cutoff",
    "fairness_gap",
    "opt_cutoff",
    "rule_of_thumb_cutoff",
    "rule_of_thumb_fraction",
    "sim_cutoff_pair",
    "sim_fair_cutoff",
    "sim_opt_cutoff",
    "slowdown_profile",
    "ExperimentConfig",
    "ExperimentResult",
    "list_experiments",
    "run_experiment",
    "DistributedServer",
    "SimulationResult",
    "Simulator",
    "Summary",
    "simulate",
    "simulate_fast",
    "BoundedPareto",
    "Empirical",
    "Exponential",
    "PoissonArrivals",
    "ServiceDistribution",
    "SyntheticWorkload",
    "Trace",
    "c90",
    "ctc",
    "get_workload",
    "j90",
    "__version__",
]
