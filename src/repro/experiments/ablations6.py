"""Sixth ablation: what does the cutoff objective trade away?

``ablate_objective`` — the paper optimises SITA-U's cutoff for mean
*slowdown* and reports response time only in passing.  The full-scale
figure-4 runs reveal why that choice matters: the slowdown-optimal
cutoff can *increase* mean response time severalfold relative to SITA-E
(it starves the short host of work, so the long host — where the bulk
of the *time* is spent — runs hotter).  This experiment makes the
trade-off explicit by fitting the cutoff for each objective and scoring
both metrics, per load.
"""

from __future__ import annotations

from ..core.cutoffs import equal_load_cutoffs, opt_cutoff
from ..core.policies import SITAPolicy
from ..sim.runner import simulate
from ..workloads.catalog import get_workload
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import point_seed

__all__ = ["run_ablate_objective"]


@experiment(
    "ablate_objective",
    "Slowdown-optimal vs response-optimal SITA cutoffs (the hidden trade-off)",
)
def run_ablate_objective(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    dist = workload.service_dist
    n_jobs = config.jobs(workload.n_jobs)
    rows = []
    for load in (0.5, 0.7, 0.9):
        if load > config.max_load:
            continue
        seed = point_seed(config, "ablate_objective", load)
        trace = workload.make_trace(load=load, n_hosts=2, n_jobs=n_jobs, rng=seed)
        variants = {
            "sita-e": float(equal_load_cutoffs(dist, 2)[0]),
            "opt-for-slowdown": opt_cutoff(load, dist, metric="mean_slowdown"),
            "opt-for-response": opt_cutoff(load, dist, metric="mean_response"),
        }
        for name, cutoff in variants.items():
            s = simulate(trace, SITAPolicy([cutoff]), 2, rng=seed).summary(
                warmup_fraction=config.warmup_fraction
            )
            rows.append(
                {
                    "cutoff_objective": name,
                    "load": load,
                    "cutoff": cutoff,
                    "mean_slowdown": s.mean_slowdown,
                    "mean_response": s.mean_response,
                    "p99_slowdown": s.p99_slowdown,
                }
            )
    return ExperimentResult(
        experiment_id="ablate_objective",
        title="What the cutoff objective trades away (2 hosts, C90)",
        columns=[
            "cutoff_objective",
            "load",
            "cutoff",
            "mean_slowdown",
            "mean_response",
            "p99_slowdown",
        ],
        rows=rows,
        notes=(
            "slowdown-optimal cutoffs underload the short host and can pay "
            "for it in mean response time; the response-optimal cutoff sits "
            "closer to SITA-E's load balance"
        ),
    )
