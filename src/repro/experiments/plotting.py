"""ASCII charts for experiment results.

The paper's artefacts are mostly *figures* (mean slowdown vs load, etc.),
so the CLI can render any experiment's series as a terminal chart:
``repro run fig2 --plot``.  Log-scale y is the default — slowdowns span
decades, exactly why the paper's own figures are hard to read linearly.

No plotting dependency: pure text, one marker per series, a legend, and
tick labels.  :func:`result_chart` knows the conventional axes of the
registered experiments (x = load or n_hosts, y = mean slowdown, one
series per policy/variant).
"""

from __future__ import annotations

import math
from collections import OrderedDict

from .base import ExperimentResult

__all__ = ["ascii_chart", "result_chart"]

_MARKERS = "ox+*#@%&"


def _format_tick(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.1e}"
    return f"{v:.3g}"


def ascii_chart(
    series: "OrderedDict[str, list[tuple[float, float]]]",
    width: int = 68,
    height: int = 18,
    log_y: bool = True,
    log_x: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(x, y)`` series as a text chart.

    Points map to a ``width × height`` grid; collisions keep the earlier
    series' marker.  ``log_y``/``log_x`` require positive values on that
    axis (offending points are dropped with a note).
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")
    if width < 20 or height < 5:
        raise ValueError("chart too small to be readable")

    dropped = 0
    cleaned: "OrderedDict[str, list[tuple[float, float]]]" = OrderedDict()
    for name, pts in series.items():
        keep = []
        for x, y in pts:
            bad = not (math.isfinite(x) and math.isfinite(y))
            bad = bad or (log_y and y <= 0) or (log_x and x <= 0)
            if bad:
                dropped += 1
                continue
            keep.append((float(x), float(y)))
        if keep:
            cleaned[name] = keep
    if not cleaned:
        raise ValueError("no finite points to plot")

    xs = [x for pts in cleaned.values() for x, _ in pts]
    ys = [y for pts in cleaned.values() for _, y in pts]
    x_raw_lo, x_raw_hi = min(xs), max(xs)
    y_raw_lo, y_raw_hi = min(ys), max(ys)
    to_y = math.log10 if log_y else (lambda v: v)
    to_x = math.log10 if log_x else (lambda v: v)
    y_lo, y_hi = to_y(y_raw_lo), to_y(y_raw_hi)
    x_lo, x_hi = to_x(x_raw_lo), to_x(x_raw_hi)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, pts) in enumerate(cleaned.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in pts:
            col = int(round((to_x(x) - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((to_y(y) - y_lo) / (y_hi - y_lo) * (height - 1)))
            r = height - 1 - row
            if grid[r][col] == " ":
                grid[r][col] = marker

    lines = []
    if title:
        lines.append(title)
    scale_note = " (log scale)" if log_y else ""
    lines.append(f"{y_label}{scale_note}")
    top_tick = _format_tick(y_raw_hi)
    bot_tick = _format_tick(y_raw_lo)
    margin = max(len(top_tick), len(bot_tick)) + 1
    for r, row_chars in enumerate(grid):
        if r == 0:
            label = top_tick
        elif r == height - 1:
            label = bot_tick
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(row_chars))
    lines.append(" " * margin + " +" + "-" * width)
    left = _format_tick(x_raw_lo)
    right = _format_tick(x_raw_hi)
    pad = width - len(left) - len(right)
    x_note = f"  ({x_label}, log scale)" if log_x else f"  ({x_label})"
    lines.append(" " * margin + "  " + left + " " * max(1, pad) + right + x_note)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(cleaned)
    )
    lines.append(f"  legend: {legend}")
    if dropped:
        lines.append(f"  ({dropped} non-positive/non-finite points not drawn)")
    return "\n".join(lines)


#: per-experiment chart conventions: (x, y, series key).
_CONVENTIONS = {
    "fig2": ("load", "mean_slowdown", "policy"),
    "fig3": ("load", "mean_slowdown", "policy"),
    "fig4": ("load", "mean_slowdown", "policy"),
    "fig5": ("load", "load_frac_analytic", "variant"),
    "fig6": ("n_hosts", "mean_slowdown", "policy"),
    "fig7": ("load", "mean_slowdown", "policy"),
    "fig8": ("load", "mean_slowdown", "policy"),
    "fig9": ("load", "mean_slowdown", "policy"),
    "fig10": ("load", "mean_slowdown", "policy"),
    "fig11": ("load", "load_frac_analytic", "variant"),
    "fig12": ("load", "mean_slowdown", "policy"),
    "fig13": ("load", "load_frac_analytic", "variant"),
    "ablate_rr_sq": ("load", "mean_slowdown", "policy"),
    "ablate_tags": ("load", "mean_slowdown", "policy"),
    "ablate_variability": ("scv", "mean_response", "policy"),
    "ablate_sessions": ("session_length", "mean_slowdown", "policy"),
    "ablate_sjf": ("load", "mean_slowdown", "policy"),
    "ablate_multicutoff": ("n_hosts", "mean_slowdown", "variant"),
}


def result_chart(result: ExperimentResult, **chart_kwargs) -> str:
    """Chart an experiment result using its conventional axes.

    Raises :class:`ValueError` for results with no chartable convention
    (e.g. ``table1``).
    """
    conv = _CONVENTIONS.get(result.experiment_id)
    if conv is None:
        raise ValueError(
            f"no chart convention for {result.experiment_id!r}; use "
            "ascii_chart() with explicit axes"
        )
    x_key, y_key, series_key = conv
    series: "OrderedDict[str, list[tuple[float, float]]]" = OrderedDict()
    for row in result.rows:
        name = str(row.get(series_key, "?"))
        x, y = row.get(x_key), row.get(y_key)
        if x is None or y is None:
            continue
        series.setdefault(name, []).append((float(x), float(y)))
    log_y = y_key not in ("load_frac_analytic",)
    return ascii_chart(
        series,
        title=result.title,
        x_label=x_key,
        y_label=y_key,
        log_y=chart_kwargs.pop("log_y", log_y),
        **chart_kwargs,
    )
