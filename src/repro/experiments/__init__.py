"""Experiment drivers — one per paper table/figure, plus ablations.

Importing this package registers every driver; use
:func:`run_experiment`/:func:`list_experiments` (or the CLI:
``python -m repro run fig4``).
"""

from .plotting import ascii_chart, result_chart
from .base import (
    QUICK,
    ExperimentConfig,
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

# Importing the driver modules registers them.
from . import table1 as _table1  # noqa: F401
from . import fig2_3 as _fig2_3  # noqa: F401
from . import fig4 as _fig4  # noqa: F401
from . import fig5 as _fig5  # noqa: F401
from . import fig6 as _fig6  # noqa: F401
from . import fig7 as _fig7  # noqa: F401
from . import fig8_9 as _fig8_9  # noqa: F401
from . import appendix as _appendix  # noqa: F401
from . import ablations as _ablations  # noqa: F401
from . import ablations2 as _ablations2  # noqa: F401
from . import ablations3 as _ablations3  # noqa: F401
from . import ablations4 as _ablations4  # noqa: F401
from . import ablations5 as _ablations5  # noqa: F401
from . import ablations6 as _ablations6  # noqa: F401
from . import ablations7 as _ablations7  # noqa: F401
from . import failures as _failures  # noqa: F401

__all__ = [
    "ascii_chart",
    "result_chart",
    "QUICK",
    "ExperimentConfig",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
