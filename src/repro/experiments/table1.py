"""Table 1 — characteristics of the trace data.

The paper's Table 1 reports, per system: duration, number of jobs, mean
service requirement, min, max and squared coefficient of variation.  We
report the same columns twice per workload: the *calibration target*
(the analytic moments of the fitted bounded Pareto) and the *realised*
statistics of one sampled synthetic trace — their agreement is the
evidence that the substitution of DESIGN.md §4 is faithful.  The final
column adds the paper's structural heavy-tail fact: the fraction of
largest jobs carrying half the load (§4: 1.3 % for the C90).
"""

from __future__ import annotations

from ..workloads.catalog import WORKLOAD_NAMES, get_workload
from ..workloads.synthetic import half_load_tail_fraction
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import point_seed

__all__ = ["run_table1"]


@experiment("table1", "Characteristics of the trace data")
def run_table1(config: ExperimentConfig) -> ExperimentResult:
    rows = []
    for name in WORKLOAD_NAMES:
        w = get_workload(name)
        target = w.table1_row()
        rows.append(
            {
                "system": name,
                "kind": "target",
                "n_jobs": w.n_jobs,
                "mean_service": target["mean_service"],
                "min_service": target["min_service"],
                "max_service": target["max_service"],
                "scv": target["scv"],
                "half_load_tail": target["half_load_tail_fraction"],
            }
        )
        n_jobs = config.jobs(w.n_jobs)
        trace = w.make_trace(
            load=0.7, n_hosts=2, n_jobs=n_jobs, rng=point_seed(config, "table1", name)
        )
        stats = trace.stats()
        rows.append(
            {
                "system": name,
                "kind": "sampled",
                "n_jobs": stats.n_jobs,
                "mean_service": stats.mean_service,
                "min_service": stats.min_service,
                "max_service": stats.max_service,
                "scv": stats.scv,
                "half_load_tail": half_load_tail_fraction(trace.service_times),
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Characteristics of the trace data (target vs sampled)",
        columns=[
            "system",
            "kind",
            "n_jobs",
            "mean_service",
            "min_service",
            "max_service",
            "scv",
            "half_load_tail",
        ],
        rows=rows,
        notes=(
            "PSC traces are proprietary; rows marked 'target' are the "
            "calibrated lognormal moments, 'sampled' one synthetic draw."
        ),
    )
