"""Figure 6 — systems with more than 4 machines (system load 0.7).

SITA with ``h − 1`` cutoffs needs ever finer runtime estimates and an
expensive search, so the paper's section 5 modifies the policies for
large ``h``: keep the single 2-host cutoff, split the hosts into a short
group and a long group, and run Least-Work-Left *within* each group.
This driver sweeps the number of hosts at fixed system load 0.7 and
compares plain LWL against grouped SITA-E / SITA-U-opt / SITA-U-fair.

Expected shape: grouped SITA-E beats LWL for small ``h`` but loses for
large ``h`` (some host is almost always idle and LWL exploits that);
the SITA-U variants dominate until ``h`` is large (paper: ≈ 70), where
all policies converge.
"""

from __future__ import annotations

from ..core.policies import LeastWorkLeftPolicy
from ..workloads.catalog import get_workload
from ..workloads.distributions import Empirical
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import (
    evaluate_policy,
    fit_sita_cutoffs,
    grouped_sita,
    make_split_trace,
    point_seed,
)

__all__ = ["run_fig6"]

_HOST_COUNTS = (2, 4, 8, 16, 32, 48, 64, 80)
_LOAD = 0.7

_COLUMNS = [
    "policy",
    "n_hosts",
    "load",
    "mean_slowdown",
    "var_slowdown",
    "mean_response",
]


@experiment("fig6", "Slowdown vs number of hosts at load 0.7 (C90)")
def run_fig6(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    rows = []
    for n_hosts in _HOST_COUNTS:
        # Keep per-host statistical effort roughly constant: more hosts
        # need more jobs for the same steady-state quality.
        n_jobs = config.jobs(workload.n_jobs * max(1, n_hosts // 4))
        seed = point_seed(config, "fig6", n_hosts)
        train, test = make_split_trace(workload, _LOAD, n_hosts, n_jobs, seed)
        cutoffs = fit_sita_cutoffs(train, _LOAD)
        train_dist = Empirical(train.service_times)
        policies = [LeastWorkLeftPolicy()]
        names = {"e": "sita-e+lwl", "opt": "sita-u-opt+lwl", "fair": "sita-u-fair+lwl"}
        for variant, cutoff in cutoffs.items():
            policies.append(
                grouped_sita(cutoff, n_hosts, train_dist, names[variant], load=_LOAD)
            )
        for policy in policies:
            point = evaluate_policy(test, policy, _LOAD, n_hosts, config, seed)
            rows.append(point.as_row())
    return ExperimentResult(
        experiment_id="fig6",
        title="Policies vs number of hosts, system load 0.7, C90",
        columns=_COLUMNS,
        rows=rows,
        notes=(
            "grouped SITA = 2-host cutoff splits hosts into short/long groups, "
            "LWL within each group (paper section 5)"
        ),
    )
