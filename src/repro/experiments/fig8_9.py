"""Figures 8 and 9 (appendix A) — the analytic counterparts.

Figure 8: analytic mean slowdown of the load-balancing policies
(Random, Least-Work-Left ≈ M/G/h, SITA-E) versus system load on the C90
size distribution.  Figure 9: the same for SITA-E vs SITA-U-opt vs
SITA-U-fair.  The paper reports both "in very close agreement with the
simulation results" — our integration tests compare these numbers against
the fig2/fig4 simulations directly.
"""

from __future__ import annotations

from ..core.cutoffs import equal_load_cutoffs
from ..core.search import analytic_cutoff_pair
from ..analysis.policies import (
    predict_lwl,
    predict_random,
    predict_round_robin,
    predict_sita,
)
from ..workloads.catalog import get_workload
from .base import ExperimentConfig, ExperimentResult, experiment

__all__ = ["run_fig8", "run_fig9"]

_COLUMNS = [
    "policy",
    "load",
    "mean_slowdown",
    "mean_waiting_slowdown",
    "var_slowdown",
    "mean_response",
]


def _prediction_row(pred) -> dict:
    return {
        "policy": pred.policy,
        "load": pred.load,
        "mean_slowdown": pred.mean_slowdown,
        "mean_waiting_slowdown": pred.mean_waiting_slowdown,
        "var_slowdown": pred.var_slowdown,
        "mean_response": pred.mean_response,
    }


@experiment("fig8", "Analytic mean slowdown of balanced policies, 2 hosts (C90)")
def run_fig8(config: ExperimentConfig) -> ExperimentResult:
    dist = get_workload("c90").service_dist
    sita_e = equal_load_cutoffs(dist, 2)
    rows = []
    for load in config.sweep_loads():
        rows.append(_prediction_row(predict_random(load, dist, 2)))
        rows.append(_prediction_row(predict_round_robin(load, dist, 2)))
        rows.append(_prediction_row(predict_lwl(load, dist, 2)))
        rows.append(
            _prediction_row(predict_sita(load, dist, 2, sita_e, "sita-e"))
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="Analysis: Random vs Round-Robin vs LWL vs SITA-E, 2 hosts, C90",
        columns=_COLUMNS,
        rows=rows,
        notes="LWL uses the M/G/h approximation; Round-Robin the E_h/G/1 one",
    )


@experiment("fig9", "Analytic mean slowdown of the SITA family, 2 hosts (C90)")
def run_fig9(config: ExperimentConfig) -> ExperimentResult:
    dist = get_workload("c90").service_dist
    sita_e = equal_load_cutoffs(dist, 2)
    rows = []
    for load in config.sweep_loads():
        # One engine call per load; the moment memo carries the
        # truncated-distribution integrals across the whole sweep.
        pair = analytic_cutoff_pair(load, dist)
        variants = {
            "sita-e": sita_e,
            "sita-u-opt": [pair["opt"]],
            "sita-u-fair": [pair["fair"]],
        }
        for name, cutoffs in variants.items():
            pred = predict_sita(load, dist, 2, cutoffs, name)
            row = _prediction_row(pred)
            row["cutoff"] = float(cutoffs[0])
            rows.append(row)
    return ExperimentResult(
        experiment_id="fig9",
        title="Analysis: SITA-E vs SITA-U-opt vs SITA-U-fair, 2 hosts, C90",
        columns=_COLUMNS + ["cutoff"],
        rows=rows,
    )
