"""Experiment infrastructure: configs, structured results, registry.

Every paper table/figure has a driver function registered under its id
(``table1``, ``fig2`` … ``fig13``, plus ablations).  A driver takes an
:class:`ExperimentConfig` and returns an :class:`ExperimentResult` — a
list of rows (dicts) with a fixed column order, renderable as an aligned
text table (what the benchmark harness prints) or CSV.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "experiment",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    ``scale`` multiplies the number of simulated jobs: 1.0 reproduces the
    paper-scale runs (tens of thousands of jobs per point); benchmarks and
    tests use smaller scales for speed.  Loads above ``max_load`` are
    dropped from sweeps (high loads need long runs to converge).
    """

    #: job-count multiplier (1.0 = paper scale).
    scale: float = 1.0
    #: base RNG seed; every simulated point derives a distinct stream.
    seed: int = 20000731  # HPDC 2000 vintage
    #: fraction of jobs dropped as warmup before computing statistics.
    warmup_fraction: float = 0.05
    #: system loads for the standard sweeps.
    loads: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
    #: drop sweep points above this load.
    max_load: float = 0.95
    #: number of independent replications averaged per simulated point.
    replications: int = 1

    def jobs(self, base: int) -> int:
        """Scale a driver's base job count (floor of 2000 jobs)."""
        return max(2000, int(base * self.scale))

    def sweep_loads(self) -> tuple[float, ...]:
        return tuple(l for l in self.loads if l <= self.max_load)

    def with_(self, **kwargs) -> "ExperimentConfig":
        """Functional update."""
        return replace(self, **kwargs)


#: configuration used by the pytest benchmarks (fast but meaningful).
QUICK = ExperimentConfig(scale=0.2, loads=(0.3, 0.5, 0.7, 0.8))


@dataclass
class ExperimentResult:
    """Structured output of one experiment driver."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict]
    notes: str = ""

    def column(self, name: str, where: Callable[[dict], bool] | None = None) -> list:
        """Extract one column, optionally filtered by a row predicate."""
        return [r[name] for r in self.rows if where is None or where(r)]

    def to_text(self, float_fmt: str = "{:.4g}") -> str:
        """Render as an aligned text table (the paper's rows/series)."""
        def fmt(v) -> str:
            if isinstance(v, float):
                return float_fmt.format(v)
            return str(v)

        header = [self.columns]
        body = [[fmt(row.get(c, "")) for c in self.columns] for row in self.rows]
        widths = [
            max(len(line[i]) for line in header + body)
            for i in range(len(self.columns))
        ]
        lines = [f"# {self.experiment_id}: {self.title}"]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Write the rows as CSV."""
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=self.columns, extrasaction="ignore")
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)


_REGISTRY: dict[str, tuple[str, Callable[[ExperimentConfig], ExperimentResult]]] = {}


def experiment(experiment_id: str, title: str):
    """Decorator registering an experiment driver under ``experiment_id``."""

    def deco(fn: Callable[[ExperimentConfig], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = (title, fn)
        fn.experiment_id = experiment_id
        fn.title = title
        return fn

    return deco


def get_experiment(experiment_id: str) -> Callable[[ExperimentConfig], ExperimentResult]:
    """Look up a driver by id."""
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def list_experiments() -> list[tuple[str, str]]:
    """All registered ``(id, title)`` pairs, sorted by id."""
    return sorted((eid, title) for eid, (title, _) in _REGISTRY.items())


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one registered experiment (default full-scale config)."""
    fn = get_experiment(experiment_id)
    return fn(config if config is not None else ExperimentConfig())
