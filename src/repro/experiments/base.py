"""Experiment infrastructure: configs, structured results, registry.

Every paper table/figure has a driver function registered under its id
(``table1``, ``fig2`` … ``fig13``, plus ablations).  A driver takes an
:class:`ExperimentConfig` and returns an :class:`ExperimentResult` — a
list of rows (dicts) with a fixed column order, renderable as an aligned
text table (what the benchmark harness prints) or CSV.

Long sweeps additionally get crash safety (see docs/ROBUSTNESS.md):

* :class:`Checkpoint` — an atomic per-point result store.  Every
  completed (policy, load, replication) point is written to its own JSON
  file via write-to-temp + fsync + rename, so a checkpoint directory is
  always a set of complete points no matter when the process dies.
* :func:`run_experiment` accepts ``checkpoint_dir``/``resume``: with
  ``resume=True`` a re-run skips every point already on disk and
  recomputes only the missing ones, producing the same result the
  uninterrupted run would have.
* :func:`run_point` — bounded timeout/retry for a single simulated
  point, so one pathological point cannot hang an entire sweep.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
import os
import signal
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "Checkpoint",
    "ExperimentConfig",
    "ExperimentResult",
    "PointTimeout",
    "active_checkpoint",
    "checkpointed",
    "config_signature",
    "experiment",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "run_point",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    ``scale`` multiplies the number of simulated jobs: 1.0 reproduces the
    paper-scale runs (tens of thousands of jobs per point); benchmarks and
    tests use smaller scales for speed.  Loads above ``max_load`` are
    dropped from sweeps (high loads need long runs to converge).
    """

    #: job-count multiplier (1.0 = paper scale).
    scale: float = 1.0
    #: base RNG seed; every simulated point derives a distinct stream.
    seed: int = 20000731  # HPDC 2000 vintage
    #: fraction of jobs dropped as warmup before computing statistics.
    warmup_fraction: float = 0.05
    #: system loads for the standard sweeps.
    loads: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
    #: drop sweep points above this load.
    max_load: float = 0.95
    #: number of independent replications averaged per simulated point.
    replications: int = 1
    #: wall-clock budget per simulated point in seconds (None = unlimited).
    point_timeout: float | None = None
    #: how many times a timed-out point is retried (with linear backoff)
    #: before the timeout propagates.
    point_retries: int = 1

    def __post_init__(self) -> None:
        if not (isinstance(self.scale, (int, float)) and 0 < self.scale
                and math.isfinite(self.scale)):
            raise ValueError(
                f"scale must be a positive finite number, got {self.scale!r}; "
                "use e.g. scale=0.1 for a quick run, 1.0 for paper scale"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ValueError(
                f"seed must be a non-negative integer, got {self.seed!r}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction!r}; "
                "it is the fraction of jobs dropped before computing statistics"
            )
        if not self.loads:
            raise ValueError("loads must name at least one system load")
        for load in self.loads:
            if not (0.0 < load < 1.0):
                raise ValueError(
                    f"every load must be in (0, 1) — the system is unstable at "
                    f"load >= 1 — got {load!r} in loads={self.loads!r}"
                )
        if not (0.0 < self.max_load < 1.0):
            raise ValueError(
                f"max_load must be in (0, 1), got {self.max_load!r}"
            )
        if not isinstance(self.replications, int) or self.replications < 1:
            raise ValueError(
                f"replications must be a positive integer, got "
                f"{self.replications!r}"
            )
        if self.point_timeout is not None and not self.point_timeout > 0:
            raise ValueError(
                f"point_timeout must be positive seconds or None, got "
                f"{self.point_timeout!r}"
            )
        if not isinstance(self.point_retries, int) or self.point_retries < 0:
            raise ValueError(
                f"point_retries must be a non-negative integer, got "
                f"{self.point_retries!r}"
            )

    def jobs(self, base: int) -> int:
        """Scale a driver's base job count (floor of 2000 jobs)."""
        return max(2000, int(base * self.scale))

    def sweep_loads(self) -> tuple[float, ...]:
        return tuple(l for l in self.loads if l <= self.max_load)

    def with_(self, **kwargs) -> "ExperimentConfig":
        """Functional update."""
        return replace(self, **kwargs)


#: configuration used by the pytest benchmarks (fast but meaningful).
QUICK = ExperimentConfig(scale=0.2, loads=(0.3, 0.5, 0.7, 0.8))


@dataclass
class ExperimentResult:
    """Structured output of one experiment driver."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict]
    notes: str = ""

    def column(self, name: str, where: Callable[[dict], bool] | None = None) -> list:
        """Extract one column, optionally filtered by a row predicate."""
        return [r[name] for r in self.rows if where is None or where(r)]

    def to_text(self, float_fmt: str = "{:.4g}") -> str:
        """Render as an aligned text table (the paper's rows/series)."""
        def fmt(v) -> str:
            if isinstance(v, float):
                return float_fmt.format(v)
            return str(v)

        header = [self.columns]
        body = [[fmt(row.get(c, "")) for c in self.columns] for row in self.rows]
        widths = [
            max(len(line[i]) for line in header + body)
            for i in range(len(self.columns))
        ]
        lines = [f"# {self.experiment_id}: {self.title}"]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Write the rows as CSV (atomically: tmp + fsync + replace).

        Same discipline as :class:`Checkpoint`: a reader — or a resumed
        run scanning output directories — never sees a torn file, even
        if the writer is killed mid-row.
        """
        path = Path(path)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with tmp.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=self.columns, extrasaction="ignore")
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)


_REGISTRY: dict[str, tuple[str, Callable[[ExperimentConfig], ExperimentResult]]] = {}


def experiment(experiment_id: str, title: str):
    """Decorator registering an experiment driver under ``experiment_id``."""

    def deco(fn: Callable[[ExperimentConfig], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = (title, fn)
        fn.experiment_id = experiment_id
        fn.title = title
        return fn

    return deco


def get_experiment(experiment_id: str) -> Callable[[ExperimentConfig], ExperimentResult]:
    """Look up a driver by id."""
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def list_experiments() -> list[tuple[str, str]]:
    """All registered ``(id, title)`` pairs, sorted by id."""
    return sorted((eid, title) for eid, (title, _) in _REGISTRY.items())


# ----------------------------------------------------------------------
# crash-safe checkpointing
# ----------------------------------------------------------------------


def config_signature(experiment_id: str, config: ExperimentConfig) -> str:
    """Stable fingerprint of (experiment, config) for checkpoint keys.

    Two runs may share checkpointed points only if every knob that can
    change a simulated result agrees; folding the signature into each
    stored entry makes stale checkpoints from a different configuration
    invisible rather than silently wrong.
    """
    parts = [experiment_id]
    for f in fields(config):
        parts.append(f"{f.name}={getattr(config, f.name)!r}")
    return ";".join(parts)


class Checkpoint:
    """Atomic per-point result store backing ``--resume``.

    One JSON file per completed point, named by a hash of the point key.
    Writes go to a temporary file in the same directory, are fsynced and
    then atomically renamed into place, so a reader (including a resumed
    run after SIGKILL) only ever sees complete entries.  Floats survive
    the JSON round trip bit-exactly (``repr``-based serialisation), which
    is what makes a resumed sweep identical to an uninterrupted one.
    """

    def __init__(self, directory: str | Path, signature: str = "") -> None:
        self.directory = Path(directory)
        self.signature = signature
        self.directory.mkdir(parents=True, exist_ok=True)
        self._puts = 0

    def _path(self, key: str) -> Path:
        digest = hashlib.blake2s(
            f"{self.signature}::{key}".encode(), digest_size=12
        ).hexdigest()
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> Any | None:
        """Stored value for ``key``, or None if absent/corrupt/stale."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if payload.get("key") != key or payload.get("signature") != self.signature:
            return None
        return payload["value"]

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` (must be JSON-serialisable)."""
        payload = {"signature": self.signature, "key": key, "value": value}
        data = json.dumps(payload, sort_keys=True)
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with tmp.open("w") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._puts += 1
        kill_after = os.environ.get("REPRO_CHECKPOINT_KILL_AFTER")
        if kill_after and self._puts >= int(kill_after):
            # Test hook: die abruptly after N completed points, so the
            # resume path can be exercised deterministically (CI does).
            os.kill(os.getpid(), signal.SIGKILL)

    def __len__(self) -> int:
        """Number of stored entries.

        Deliberately **not cached**: parallel workers write entries into
        the same directory from other processes, so any in-process count
        would go stale immediately.  Each call is an O(n) directory scan
        (no file reads) — call it once and keep the number rather than
        using ``len()`` inside a loop; for the set of completed *keys*
        use :meth:`keys`, which the parallel dispatcher calls exactly
        once per run to pre-filter finished points.
        """
        return sum(1 for _ in self.directory.glob("*.json"))

    def keys(self) -> list[str]:
        """Keys of every complete, signature-matching stored point.

        One O(n) pass reading each entry (corrupt or stale-signature
        files are skipped, matching :meth:`get`), sorted for a
        deterministic listing.  The parallel dispatcher uses this to
        pre-filter completed points in a single scan instead of probing
        :meth:`get` once per sweep point.
        """
        out = []
        for path in self.directory.glob("*.json"):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            key = payload.get("key")
            if isinstance(key, str) and payload.get("signature") == self.signature:
                out.append(key)
        return sorted(out)

    def clear(self) -> None:
        """Drop every stored point (a fresh, non-resumed run starts here)."""
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)


#: checkpoint consulted by :func:`checkpointed` (None = checkpointing off).
_ACTIVE_CHECKPOINT: Checkpoint | None = None


@contextmanager
def active_checkpoint(checkpoint: Checkpoint | None) -> Iterator[Checkpoint | None]:
    """Install ``checkpoint`` for the duration of an experiment run."""
    global _ACTIVE_CHECKPOINT
    previous = _ACTIVE_CHECKPOINT
    _ACTIVE_CHECKPOINT = checkpoint
    try:
        yield checkpoint
    finally:
        _ACTIVE_CHECKPOINT = previous


def checkpointed(key: str, compute: Callable[[], Any]) -> Any:
    """Return the checkpointed value for ``key``, computing and storing
    it on a miss.  With no active checkpoint this is just ``compute()``.

    The value must be JSON-serialisable; callers own the (de)serialised
    shape.  This is the single hook experiment drivers need: wrap each
    per-(policy, load, replication) point and crash-safe resume follows.
    """
    if _ACTIVE_CHECKPOINT is None:
        return compute()
    cached = _ACTIVE_CHECKPOINT.get(key)
    if cached is not None:
        return cached
    value = compute()
    _ACTIVE_CHECKPOINT.put(key, value)
    return value


# ----------------------------------------------------------------------
# per-point timeout with bounded retry
# ----------------------------------------------------------------------


class PointTimeout(RuntimeError):
    """A single simulated point exceeded its wall-clock budget."""


@contextmanager
def _alarm(seconds: float) -> Iterator[None]:
    def _on_alarm(signum, frame):
        raise PointTimeout(f"point exceeded {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_point(
    compute: Callable[[], Any],
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.5,
    label: str = "point",
) -> Any:
    """Run one simulated point under a wall-clock budget.

    A point that overruns ``timeout`` seconds is aborted via ``SIGALRM``
    and retried up to ``retries`` times with linear backoff (timeouts on
    a loaded machine are usually transient); the final attempt's
    :class:`PointTimeout` propagates.  With ``timeout=None``, off the
    main thread, or on platforms without ``SIGALRM``, the budget is not
    enforceable and ``compute`` runs unbounded.
    """
    can_alarm = (
        timeout is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        return compute()
    attempt = 0
    while True:
        try:
            with _alarm(timeout):
                return compute()
        except PointTimeout:
            attempt += 1
            if attempt > retries:
                raise
            warnings.warn(
                f"{label}: timed out after {timeout:g}s "
                f"(attempt {attempt}/{retries + 1}); retrying",
                RuntimeWarning,
                stacklevel=2,
            )
            time.sleep(backoff * attempt)


def run_experiment(
    experiment_id: str,
    config: ExperimentConfig | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    workers: int | None = None,
) -> ExperimentResult:
    """Run one registered experiment (default full-scale config).

    With ``checkpoint_dir`` every completed point is persisted atomically
    under ``<checkpoint_dir>/<experiment_id>/``; ``resume=True`` reuses
    the points already there (same experiment *and* same config — stale
    entries are ignored via :func:`config_signature`), so a run killed
    mid-sweep picks up where it left off and produces the same rows an
    uninterrupted run would.  Without ``resume`` an existing checkpoint
    directory is cleared first: a fresh run never silently reuses old
    points.

    ``workers`` > 1 fans the experiment's simulated points out over a
    process pool (see :mod:`repro.experiments.parallel`); results are
    collected in deterministic submission order and the returned rows
    are bit-identical to a serial run.  ``None``/1 is the plain serial
    path.  Checkpointing composes: pool workers write through the same
    atomic store, and ``resume`` pre-filters completed points before
    dispatch.
    """
    if workers is not None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ValueError(
                f"workers must be a positive integer or None, got {workers!r}"
            )
        if workers > 1:
            from .parallel import run_parallel_experiment

            return run_parallel_experiment(
                experiment_id,
                config,
                workers=workers,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
            )
    fn = get_experiment(experiment_id)
    config = config if config is not None else ExperimentConfig()
    if checkpoint_dir is None:
        return fn(config)
    checkpoint = Checkpoint(
        Path(checkpoint_dir) / experiment_id,
        signature=config_signature(experiment_id, config),
    )
    if not resume:
        checkpoint.clear()
    with active_checkpoint(checkpoint):
        return fn(config)
