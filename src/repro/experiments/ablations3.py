"""Third ablation wave: the multi-cutoff search the paper skipped.

``ablate_multicutoff`` — section 5 of the paper keeps the single 2-host
cutoff for larger machines because "the search space for the optimal and
fair cutoffs becomes much larger making the search computationally
expensive".  We implemented the full ``h − 1``-cutoff searches anyway
(:func:`repro.core.cutoffs.opt_cutoffs_multi` /
:func:`~repro.core.cutoffs.fair_cutoffs_multi`), so this experiment
answers the question the paper left open: **how much does the grouped
2-cutoff approximation give up against true h-host SITA-U?**
"""

from __future__ import annotations

import time

from ..core.cutoffs import (
    equal_load_cutoffs,
    fair_cutoff,
    fair_cutoffs_multi,
    opt_cutoff,
    opt_cutoffs_multi,
)
from ..core.policies import SITAPolicy
from ..sim.runner import simulate
from ..workloads.catalog import get_workload
from ..workloads.distributions import Empirical
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import grouped_sita, make_split_trace, point_seed

__all__ = ["run_ablate_multicutoff"]

_LOAD = 0.7


@experiment(
    "ablate_multicutoff",
    "Full h-cutoff SITA-U vs the paper's grouped 2-cutoff shortcut",
)
def run_ablate_multicutoff(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    rows = []
    for n_hosts in (3, 4, 6):
        n_jobs = config.jobs(workload.n_jobs)
        seed = point_seed(config, "ablate_multicutoff", n_hosts)
        train, test = make_split_trace(workload, _LOAD, n_hosts, n_jobs, seed)
        dist = Empirical(train.service_times)
        # The full multi-cutoff searches need a smooth objective — the
        # longest class of an empirical half-trace holds only tens of
        # jobs, so its mean slowdown is a step function of the cutoffs.
        # Fit them on the calibrated distribution instead (the paper also
        # derives analytic cutoffs and reports both methods agree).
        smooth = workload.service_dist

        candidates = []
        t0 = time.perf_counter()
        candidates.append(
            ("sita-e", SITAPolicy(equal_load_cutoffs(dist, n_hosts), name="sita-e"),
             time.perf_counter() - t0)
        )
        t0 = time.perf_counter()
        candidates.append(
            ("sita-u-opt (full)",
             SITAPolicy(opt_cutoffs_multi(_LOAD, smooth, n_hosts), name="opt-full"),
             time.perf_counter() - t0)
        )
        t0 = time.perf_counter()
        candidates.append(
            ("sita-u-fair (full)",
             SITAPolicy(fair_cutoffs_multi(_LOAD, smooth, n_hosts), name="fair-full"),
             time.perf_counter() - t0)
        )
        t0 = time.perf_counter()
        candidates.append(
            ("sita-u-opt (grouped)",
             grouped_sita(opt_cutoff(_LOAD, dist), n_hosts, dist,
                          "opt-grouped", load=_LOAD),
             time.perf_counter() - t0)
        )
        t0 = time.perf_counter()
        candidates.append(
            ("sita-u-fair (grouped)",
             grouped_sita(fair_cutoff(_LOAD, dist), n_hosts, dist,
                          "fair-grouped", load=_LOAD),
             time.perf_counter() - t0)
        )

        for label, policy, fit_seconds in candidates:
            s = simulate(test, policy, n_hosts, rng=seed).summary(
                warmup_fraction=config.warmup_fraction
            )
            rows.append(
                {
                    "variant": label,
                    "n_hosts": n_hosts,
                    "mean_slowdown": s.mean_slowdown,
                    "var_slowdown": s.var_slowdown,
                    "mean_response": s.mean_response,
                    "fit_seconds": fit_seconds,
                }
            )
    return ExperimentResult(
        experiment_id="ablate_multicutoff",
        title="Full multi-cutoff SITA-U vs grouped 2-cutoff (load 0.7, C90)",
        columns=[
            "variant",
            "n_hosts",
            "mean_slowdown",
            "var_slowdown",
            "mean_response",
            "fit_seconds",
        ],
        rows=rows,
        notes=(
            "the paper's section 5 avoids the full search as too expensive; "
            "fit_seconds quantifies the cost it worried about"
        ),
    )
