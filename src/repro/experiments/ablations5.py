"""Fifth ablation wave: heterogeneous-speed hosts.

``ablate_hetero`` — the paper assumes identical hosts, but its own
setting suggests the question: PSC ran a C90 next to J90s.  Given one
fast and one slow machine, **which should serve the short jobs?**  This
experiment answers it with both the heterogeneous SITA analysis
(:func:`repro.analysis.sita_analysis.analyze_sita` with ``host_speeds``)
and simulation, at equal total capacity:

* ``fast-serves-shorts`` — speeds (2, 1), SITA-U-opt cutoff fitted for
  that orientation;
* ``fast-serves-longs`` — speeds (1, 2), ditto;
* plain LWL on the same heterogeneous pair (work-left in seconds), and
  the homogeneous (1.5, 1.5) SITA-U-opt reference at the same capacity.

Finding: pointing the fast machine at the *longs* wins — halving the
elephants' occupancy shrinks E[X²] exactly where the PK formula is
quadratic — and heterogeneity at equal capacity beats the homogeneous
split.
"""

from __future__ import annotations

import numpy as np

from ..analysis.sita_analysis import analyze_sita
from ..core.cutoffs import opt_cutoff
from ..core.policies import LeastWorkLeftPolicy, SITAPolicy
from ..sim.runner import simulate
from ..workloads.catalog import get_workload
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import point_seed

__all__ = ["run_ablate_hetero"]

_LOAD = 0.7


@experiment("ablate_hetero", "Heterogeneous hosts: which machine serves the shorts?")
def run_ablate_hetero(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    dist = workload.service_dist
    n_jobs = config.jobs(workload.n_jobs)
    seed = point_seed(config, "ablate_hetero")
    # Total capacity 3 "machines worth" split across 2 hosts; the load
    # convention stays rho = lam*E[X]/h with h = capacity units.
    capacity_units = 3
    trace = workload.make_trace(
        load=_LOAD, n_hosts=capacity_units, n_jobs=n_jobs, rng=seed
    )
    lam = _LOAD * capacity_units / dist.mean
    # analyze_sita/opt_cutoff use the 2-host convention lam = 2*load/E[X];
    # express the same absolute rate as an equivalent 2-host load.
    eq_load = lam * dist.mean / 2.0

    cases = []
    for label, speeds in (
        ("fast-serves-shorts", (2.0, 1.0)),
        ("fast-serves-longs", (1.0, 2.0)),
        ("homogeneous", (1.5, 1.5)),
    ):
        cutoff = opt_cutoff(eq_load, dist, host_speeds=list(speeds))
        cases.append((f"sita-u-opt/{label}", SITAPolicy([cutoff]), speeds, cutoff))
    cases.append(("lwl/fast+slow", LeastWorkLeftPolicy(), (2.0, 1.0), None))

    rows = []
    for label, policy, speeds, cutoff in cases:
        result = simulate(
            trace, policy, 2, rng=seed, host_speeds=np.asarray(speeds)
        )
        s = result.summary(warmup_fraction=config.warmup_fraction)
        row = {
            "configuration": label,
            "speeds": f"{speeds[0]:g}/{speeds[1]:g}",
            "cutoff": cutoff if cutoff is not None else float("nan"),
            "mean_slowdown": s.mean_slowdown,
            "var_slowdown": s.var_slowdown,
            "mean_response": s.mean_response,
        }
        if cutoff is not None:
            a = analyze_sita(lam, dist, [cutoff], host_speeds=list(speeds))
            row["analytic_mean_slowdown"] = a.mean_slowdown
        else:
            row["analytic_mean_slowdown"] = float("nan")
        rows.append(row)
    return ExperimentResult(
        experiment_id="ablate_hetero",
        title=(
            "One fast + one slow host at equal total capacity "
            f"(load {_LOAD}, C90)"
        ),
        columns=[
            "configuration",
            "speeds",
            "cutoff",
            "mean_slowdown",
            "var_slowdown",
            "mean_response",
            "analytic_mean_slowdown",
        ],
        rows=rows,
        notes=(
            "speeds are relative (2/1 = one machine twice as fast); "
            "cutoffs are SITA-U-opt fitted per orientation"
        ),
    )
