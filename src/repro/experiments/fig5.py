"""Figure 5 — fraction of total load on Host 1 and the ρ/2 rule of thumb.

For each system load, fit the SITA-U-opt and SITA-U-fair cutoffs and
report the fraction of total work they route to the short-job host,
alongside the paper's rule-of-thumb value ρ/2 (and SITA-E's constant
0.5 for reference).  Both the analytic fraction (from the size
distribution) and the realised fraction on the evaluation half of the
trace are reported.
"""

from __future__ import annotations

from ..core.cutoffs import short_host_load_fraction
from ..core.rules import rule_of_thumb_fraction
from ..workloads.catalog import get_workload
from ..workloads.distributions import Empirical
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import fit_sita_cutoffs, make_split_trace, point_seed

__all__ = ["run_fig5", "load_fraction_sweep"]

_COLUMNS = [
    "load",
    "variant",
    "cutoff",
    "load_frac_analytic",
    "load_frac_trace",
    "rule_of_thumb",
]


def load_fraction_sweep(
    config: ExperimentConfig, workload_name: str, experiment_id: str
) -> list[dict]:
    workload = get_workload(workload_name)
    base_jobs = config.jobs(max(workload.n_jobs, 30_000))
    rows = []
    for load in config.sweep_loads():
        seed = point_seed(config, experiment_id, workload_name, load)
        train, test = make_split_trace(workload, load, 2, base_jobs, seed)
        cutoffs = fit_sita_cutoffs(train, load, variants=("opt", "fair"))
        test_dist = Empirical(test.service_times)
        for variant, cutoff in cutoffs.items():
            rows.append(
                {
                    "load": load,
                    "variant": f"sita-u-{variant}",
                    "cutoff": cutoff,
                    "load_frac_analytic": short_host_load_fraction(
                        workload.service_dist, cutoff
                    ),
                    "load_frac_trace": short_host_load_fraction(test_dist, cutoff),
                    "rule_of_thumb": rule_of_thumb_fraction(load),
                }
            )
    return rows


@experiment("fig5", "Host-1 load fraction under SITA-U and the rho/2 rule (C90)")
def run_fig5(config: ExperimentConfig) -> ExperimentResult:
    rows = load_fraction_sweep(config, "c90", "fig5")
    return ExperimentResult(
        experiment_id="fig5",
        title="Fraction of total load on Host 1: SITA-U-opt, SITA-U-fair, rho/2",
        columns=_COLUMNS,
        rows=rows,
        notes="SITA-E would put 0.5 at every load; SITA-U underloads Host 1",
    )
