"""Figure 4 — SITA-E vs SITA-U-opt vs SITA-U-fair (simulation, 2 hosts).

The paper's headline comparison: the two load-*unbalancing* policies
against the best load-balancing one.  Cutoffs are fitted on the first
half of the trace (analytic Theorem-1 search on the empirical size
distribution, §4.1) and evaluated on the second half.

Expected shape (§4.2): SITA-U-fair is only slightly worse than
SITA-U-opt; both improve on SITA-E by 4–10× in mean slowdown and
10–100× in variance of slowdown over loads 0.5–0.8.
"""

from __future__ import annotations

from ..workloads.catalog import get_workload
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import (
    aggregate_replications,
    evaluate_policy,
    fit_sita_cutoffs,
    make_split_trace,
    point_seed,
    sita_family,
)

__all__ = ["run_fig4", "sita_sweep"]

_COLUMNS = [
    "policy",
    "load",
    "n_hosts",
    "cutoff",
    "mean_slowdown",
    "var_slowdown",
    "mean_response",
    "mean_wait",
    "load_frac_host0",
]


def sita_sweep(
    config: ExperimentConfig, workload_name: str, experiment_id: str
) -> list[dict]:
    """Sweep the SITA family (E / U-opt / U-fair) over system loads, h=2."""
    workload = get_workload(workload_name)
    base_jobs = config.jobs(max(workload.n_jobs, 30_000))
    rows = []
    for load in config.sweep_loads():
        per_policy: dict[str, list[dict]] = {}
        for rep in range(config.replications):
            seed = point_seed(config, experiment_id, workload_name, load, rep)
            train, test = make_split_trace(workload, load, 2, base_jobs, seed)
            cutoffs = fit_sita_cutoffs(train, load)
            for policy in sita_family(cutoffs):
                point = evaluate_policy(test, policy, load, 2, config, seed)
                row = point.as_row()
                row["cutoff"] = float(policy.cutoffs[0])
                per_policy.setdefault(policy.name, []).append(row)
        for reps in per_policy.values():
            rows.append(aggregate_replications(reps))
    return rows


@experiment("fig4", "SITA-E vs SITA-U-opt vs SITA-U-fair, 2 hosts, C90 (simulation)")
def run_fig4(config: ExperimentConfig) -> ExperimentResult:
    rows = sita_sweep(config, "c90", "fig4")
    return ExperimentResult(
        experiment_id="fig4",
        title="Load unbalancing: SITA-E vs SITA-U-opt vs SITA-U-fair, C90",
        columns=_COLUMNS,
        rows=rows,
        notes="cutoffs fitted on the first half of each trace, evaluated on the second",
    )
