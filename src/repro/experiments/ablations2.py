"""Second ablation wave: SJF vs fairness, size dependence, predictors.

* ``ablate_sjf`` — the paper's section 8 tension: Shortest-Job-First-style
  scheduling (a size-ordered central queue) minimises mean slowdown but
  biases against long jobs; SITA-U-fair gets most of the win with none of
  the bias.  Includes the Processor-Sharing reference value ``1/(1−ρ)``
  (footnote 1) as the fairness gold standard.
* ``ablate_sessions`` — the paper's §3.3 caveat: "if there are
  dependencies and many jobs with similar runtimes arrive simultaneously,
  the performance of SITA-E becomes worse".  We sweep the session length
  of the size process and measure both SITA-E and LWL; on the slowdown
  metric size dependence hurts the *balancing* policy even more (long-job
  sessions clog every LWL host, while SITA quarantines them).
* ``ablate_predictor`` — section 7's proposed alternative to user
  estimates: predict runtimes from history ([9, 16]).  Jobs carry user
  ids with per-user size regimes; a leak-free running-mean predictor
  (:class:`~repro.core.estimation.HistoryPredictor`) feeds SITA-U-fair
  and estimate-driven LWL, compared against oracle sizes.
"""

from __future__ import annotations

import numpy as np

from ..analysis.mg1 import mg1_ps_mean_slowdown
from ..core.cutoffs import equal_load_cutoffs, fair_cutoff
from ..core.estimation import HistoryPredictor
from ..core.fairness import class_fairness_gap
from ..core.policies import (
    CentralQueuePolicy,
    EstimatedLWLPolicy,
    LeastWorkLeftPolicy,
    SITAPolicy,
)
from ..sim.runner import simulate
from ..workloads.catalog import get_workload
from ..workloads.distributions import Empirical, _as_rng
from ..workloads.traces import Trace
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import fit_sita_cutoffs, make_split_trace, point_seed

__all__ = ["run_ablate_sjf", "run_ablate_sessions", "run_ablate_predictor"]


@experiment("ablate_sjf", "Favouring short jobs: SJF central queue vs SITA-U-fair")
def run_ablate_sjf(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    # The SJF central queue runs on the event engine; keep traces moderate.
    n_jobs = min(config.jobs(workload.n_jobs // 2), 40_000)
    rows = []
    for load in (0.5, 0.7, 0.9):
        if load > config.max_load:
            continue
        seed = point_seed(config, "ablate_sjf", load)
        train, test = make_split_trace(workload, load, 2, n_jobs, seed)
        cutoff = fit_sita_cutoffs(train, load, variants=("fair",))["fair"]
        policies = [
            CentralQueuePolicy("fcfs"),
            CentralQueuePolicy("sjf"),
            SITAPolicy([cutoff], name="sita-u-fair"),
        ]
        for policy in policies:
            result = simulate(test, policy, 2, rng=seed)
            s = result.summary(warmup_fraction=config.warmup_fraction)
            gap = class_fairness_gap(
                result, cutoff, warmup_fraction=config.warmup_fraction
            )
            rows.append(
                {
                    "policy": policy.name,
                    "load": load,
                    "mean_slowdown": s.mean_slowdown,
                    "p99_slowdown": s.p99_slowdown,
                    "max_slowdown": s.max_slowdown,
                    "fairness_gap": gap,
                }
            )
        rows.append(
            {
                "policy": "processor-sharing (analytic)",
                "load": load,
                "mean_slowdown": mg1_ps_mean_slowdown(
                    2 * load / workload.service_dist.mean / 2,
                    workload.service_dist,
                ),
                "p99_slowdown": float("nan"),
                "max_slowdown": float("nan"),
                "fairness_gap": 1.0,
            }
        )
    return ExperimentResult(
        experiment_id="ablate_sjf",
        title="SJF central queue vs SITA-U-fair vs FCFS (2 hosts, C90)",
        columns=[
            "policy",
            "load",
            "mean_slowdown",
            "p99_slowdown",
            "max_slowdown",
            "fairness_gap",
        ],
        rows=rows,
        notes=(
            "fairness_gap = E[S|short]/E[S|long] at the fair cutoff "
            "(1.0 = fair); PS is the idealised-fairness reference of the "
            "paper's footnote 1"
        ),
    )


@experiment("ablate_sessions", "Size dependence (user sessions) vs SITA and LWL")
def run_ablate_sessions(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    load = 0.7
    n_jobs = config.jobs(workload.n_jobs)
    rows = []
    for session_length in (1.0, 4.0, 16.0, 64.0):
        seed = point_seed(config, "ablate_sessions", session_length)
        trace = workload.make_trace(
            load=load,
            n_hosts=2,
            n_jobs=n_jobs,
            rng=seed,
            session_length=session_length,
        )
        train, test = trace.split(0.5)
        cutoff = equal_load_cutoffs(Empirical(train.service_times), 2)
        for policy in (LeastWorkLeftPolicy(), SITAPolicy(cutoff, name="sita-e")):
            s = simulate(test, policy, 2, rng=seed).summary(
                warmup_fraction=config.warmup_fraction
            )
            rows.append(
                {
                    "session_length": session_length,
                    "policy": policy.name,
                    "mean_slowdown": s.mean_slowdown,
                    "var_slowdown": s.var_slowdown,
                    "mean_response": s.mean_response,
                }
            )
    return ExperimentResult(
        experiment_id="ablate_sessions",
        title="Effect of size dependence (session length) at load 0.7, C90",
        columns=[
            "session_length",
            "policy",
            "mean_slowdown",
            "var_slowdown",
            "mean_response",
        ],
        rows=rows,
        notes=(
            "session_length = mean run of similar-sized jobs; 1 = i.i.d. "
            "(paper section 3.3 discusses this dependency)"
        ),
    )


def _make_user_trace(
    workload, load: float, n_jobs: int, n_users: int, seed: int
) -> tuple[Trace, np.ndarray]:
    """A trace whose sizes follow per-user regimes (predictable history).

    Each user's jobs share a base size drawn from the workload
    distribution, with 30 % lognormal jitter; the marginal distribution
    stays close to the calibrated one while runtimes become predictable
    from the user's history — the regime refs [9, 16] exploit.
    """
    rng = _as_rng(seed)
    base_trace = workload.make_trace(load=load, n_hosts=2, n_jobs=n_jobs, rng=rng)
    users = rng.integers(0, n_users, size=n_jobs)
    user_base = workload.service_dist.sample(n_users, rng)
    sizes = user_base[users] * rng.lognormal(0.0, 0.3, size=n_jobs)
    # Rescale arrivals so the realised load stays on target.
    trace = Trace(base_trace.arrival_times, sizes, name="user-trace")
    return trace.scaled_to_load(load, 2), users


@experiment("ablate_predictor", "History-based runtime prediction driving SITA (section 7)")
def run_ablate_predictor(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    load = 0.7
    n_jobs = config.jobs(workload.n_jobs // 2)
    seed = point_seed(config, "ablate_predictor")
    trace, users = _make_user_trace(workload, load, n_jobs, n_users=200, seed=seed)
    predictions = HistoryPredictor(prior=trace.mean_service).predict(
        trace.service_times, users
    )
    dist = Empirical(trace.service_times)
    cutoff = fair_cutoff(load, dist)
    rows = []
    cases = [
        ("sita-u-fair / oracle sizes", SITAPolicy([cutoff], name="f"), None),
        ("sita-u-fair / predicted", SITAPolicy([cutoff], name="f"), predictions),
        ("estimated-lwl / oracle sizes", EstimatedLWLPolicy(), None),
        ("estimated-lwl / predicted", EstimatedLWLPolicy(), predictions),
        ("lwl (true work)", LeastWorkLeftPolicy(), None),
    ]
    accuracy = float(
        np.mean((predictions <= cutoff) == (trace.service_times <= cutoff))
    )
    for label, policy, est in cases:
        s = simulate(trace, policy, 2, rng=seed, size_estimates=est).summary(
            warmup_fraction=config.warmup_fraction
        )
        rows.append(
            {
                "configuration": label,
                "mean_slowdown": s.mean_slowdown,
                "var_slowdown": s.var_slowdown,
                "mean_response": s.mean_response,
            }
        )
    return ExperimentResult(
        experiment_id="ablate_predictor",
        title="Runtime prediction from history driving dispatch (load 0.7)",
        columns=["configuration", "mean_slowdown", "var_slowdown", "mean_response"],
        rows=rows,
        notes=(
            f"running-mean predictor classifies {accuracy:.0%} of jobs on "
            "the correct side of the SITA cutoff (per-user size regimes, "
            "200 users)"
        ),
    )
