"""Appendices B and C — the J90 and CTC replications.

Figures 10/12 repeat the full policy comparison (the balanced policies of
figure 2 *and* the SITA family of figure 4, "all task assignment
policies") on the J90-like and CTC-like workloads; figures 11/13 repeat
the load-fraction / rule-of-thumb plot of figure 5.  The paper's point is
robustness: the C90 conclusions replicate on a second Cray log and on a
very different (12-hour-capped, much lower variability) SP2 log.
"""

from __future__ import annotations

from .base import ExperimentConfig, ExperimentResult, experiment
from .fig2_3 import balanced_policy_sweep
from .fig4 import sita_sweep
from .fig5 import load_fraction_sweep

__all__ = ["run_fig10", "run_fig11", "run_fig12", "run_fig13"]

_POLICY_COLUMNS = [
    "policy",
    "load",
    "n_hosts",
    "mean_slowdown",
    "var_slowdown",
    "mean_response",
]

_FRACTION_COLUMNS = [
    "load",
    "variant",
    "cutoff",
    "load_frac_analytic",
    "load_frac_trace",
    "rule_of_thumb",
]


def _all_policies(config: ExperimentConfig, workload: str, eid: str) -> list[dict]:
    rows = balanced_policy_sweep(config, workload, 2, eid)
    rows += sita_sweep(config, workload, eid)
    # Drop the duplicate SITA-E rows contributed by the balanced sweep
    # (the SITA sweep's train/test protocol version is the canonical one).
    seen = set()
    out = []
    for r in rows:
        key = (r["policy"], r["load"])
        if key in seen:
            continue
        seen.add(key)
        out.append(r)
    return out


@experiment("fig10", "All policies on the J90 workload (simulation)")
def run_fig10(config: ExperimentConfig) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig10",
        title="All task assignment policies, 2 hosts, J90",
        columns=_POLICY_COLUMNS,
        rows=_all_policies(config, "j90", "fig10"),
    )


@experiment("fig11", "Host-1 load fraction and rho/2 rule, J90")
def run_fig11(config: ExperimentConfig) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig11",
        title="Fraction of load on Host 1 under SITA-U, J90",
        columns=_FRACTION_COLUMNS,
        rows=load_fraction_sweep(config, "j90", "fig11"),
    )


@experiment("fig12", "All policies on the CTC workload (simulation)")
def run_fig12(config: ExperimentConfig) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig12",
        title="All task assignment policies, 2 hosts, CTC",
        columns=_POLICY_COLUMNS,
        rows=_all_policies(config, "ctc", "fig12"),
        notes="CTC has far lower size variability (12-hour kill limit)",
    )


@experiment("fig13", "Host-1 load fraction and rho/2 rule, CTC")
def run_fig13(config: ExperimentConfig) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig13",
        title="Fraction of load on Host 1 under SITA-U, CTC",
        columns=_FRACTION_COLUMNS,
        rows=load_fraction_sweep(config, "ctc", "fig13"),
    )
