"""Seventh ablation: how much does the workload calibration choice matter?

``ablate_calibration`` — the single most consequential substitution in
this reproduction is the choice of distribution family for the missing
PSC traces (DESIGN.md §4).  Three candidates all match the published
mean; they differ in which *other* Table-1 statistics they can satisfy:

* ``lognormal`` (the shipped calibration) — matches mean + C² = 43 and
  *implies* the published min/max and half-load structure;
* ``bp-min`` — bounded Pareto pinned to min = 1 s, matching mean + C²;
  forces α ≈ 0.29, flooding the trace with sub-10 s jobs;
* ``bp-max`` — bounded Pareto pinned to max ≈ 2.2e6 s, matching
  mean + C²; forces min ≈ 750 s, erasing the tiny jobs entirely.

For each family the experiment runs the headline comparisons (LWL vs
SITA-E vs SITA-U-opt at ρ = 0.7) and reports which of the paper's claims
survive.  This turns the narrative justification in DESIGN.md §4 into a
measured result: the qualitative conclusions are calibration-*sensitive*,
and the lognormal is the only family under which *all* of them hold.
"""

from __future__ import annotations

from ..core.cutoffs import equal_load_cutoffs, opt_cutoff, short_host_load_fraction
from ..core.policies import LeastWorkLeftPolicy, SITAPolicy
from ..sim.runner import simulate
from ..workloads.catalog import get_workload
from ..workloads.distributions import BoundedPareto
from ..workloads.synthetic import SyntheticWorkload
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import point_seed

__all__ = ["run_ablate_calibration"]

_LOAD = 0.7


def _families() -> dict[str, SyntheticWorkload]:
    logn = get_workload("c90")
    return {
        "lognormal": logn,
        "bp-min": SyntheticWorkload(
            name="bp-min",
            service_dist=BoundedPareto.fit_min(lower=1.0, mean=4562.6, scv=43.0),
            n_jobs=logn.n_jobs,
        ),
        "bp-max": SyntheticWorkload(
            name="bp-max",
            service_dist=BoundedPareto.fit(mean=4562.6, scv=43.0, upper=2_222_749.0),
            n_jobs=logn.n_jobs,
        ),
    }


@experiment(
    "ablate_calibration",
    "Sensitivity of the paper's claims to the workload family (DESIGN.md §4)",
)
def run_ablate_calibration(config: ExperimentConfig) -> ExperimentResult:
    rows = []
    for family, workload in _families().items():
        dist = workload.service_dist
        n_jobs = config.jobs(workload.n_jobs)
        seed = point_seed(config, "ablate_calibration", family)
        trace = workload.make_trace(load=_LOAD, n_hosts=2, n_jobs=n_jobs, rng=seed)
        ce = float(equal_load_cutoffs(dist, 2)[0])
        co = opt_cutoff(_LOAD, dist)
        scores = {}
        for name, policy in (
            ("lwl", LeastWorkLeftPolicy()),
            ("sita-e", SITAPolicy([ce])),
            ("sita-u-opt", SITAPolicy([co])),
        ):
            scores[name] = simulate(trace, policy, 2, rng=seed).summary(
                warmup_fraction=config.warmup_fraction
            ).mean_slowdown
        rows.append(
            {
                "family": family,
                "min_size": dist.lower,
                "max_size": dist.upper,
                "lwl": scores["lwl"],
                "sita_e": scores["sita-e"],
                "sita_u_opt": scores["sita-u-opt"],
                # The paper's headline claims, as measured factors:
                # §3.2 wants SITA-E over LWL by ~3-4x at this load;
                "sita_gain": scores["lwl"] / scores["sita-e"],
                # §4.2 wants SITA-U over SITA-E by ~4-10x;
                "unbalance_gain": scores["sita-e"] / scores["sita-u-opt"],
                # §4.4 wants the opt load fraction near rho/2 = 0.35.
                "opt_load_frac": short_host_load_fraction(dist, co),
            }
        )
    return ExperimentResult(
        experiment_id="ablate_calibration",
        title=f"Which paper claims survive each calibration (load {_LOAD})",
        columns=[
            "family",
            "min_size",
            "max_size",
            "lwl",
            "sita_e",
            "sita_u_opt",
            "sita_gain",
            "unbalance_gain",
            "opt_load_frac",
        ],
        rows=rows,
        notes=(
            "all families match mean 4562.6s and C²=43; the paper needs "
            "sita_gain ≈ 3-4x, unbalance_gain ≈ 4-10x and opt_load_frac "
            "≈ rho/2 = 0.35 — bp-min loses the first, bp-max the second "
            "and third; only the lognormal delivers all (DESIGN.md §4)"
        ),
    )
