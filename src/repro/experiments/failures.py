"""Fault injection — the Figure-4 policies under host failures.

The paper's recommendation is to deliberately *unbalance* load: SITA-U
keeps the short-job host lightly loaded so the many short jobs fly
through.  That design concentrates the fate of most jobs on one host —
the configuration most exposed to that host failing.  This experiment
reruns the Figure-4 comparison (SITA-E / SITA-U-opt / SITA-U-fair, plus
the best load-balancing policy, LWL) at a fixed load while sweeping host
availability downward, under each of the three failure semantics (see
:mod:`repro.sim.faults`).

Reported per point, besides the usual metrics:

``slowdown_penalty``
    Mean slowdown relative to the same policy's failure-free run —
    how much of the policy's advantage failures erase.
``fairness_gap``
    Ratio of long-job to short-job mean slowdown (split at the fitted
    SITA-E cutoff; 1.0 = perfectly fair).  SITA-U-fair's defining
    property is a gap of ~1 — does it survive failures?

Failure timescales are derived from the workload: the mean repair time
is ``_MTTR_SERVICE_MULTIPLE`` mean service times, and the MTBF follows
from the target availability, so the sweep is meaningful at any
``scale``.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.policies import LeastWorkLeftPolicy
from ..sim.faults import SEMANTICS, FaultModel
from ..workloads.catalog import get_workload
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import (
    aggregate_replications,
    evaluate_policy,
    fit_sita_cutoffs,
    make_split_trace,
    point_seed,
    sita_family,
)

__all__ = ["run_failures", "failure_sweep"]

_COLUMNS = [
    "policy",
    "semantics",
    "availability",
    "load",
    "n_hosts",
    "mean_slowdown",
    "slowdown_penalty",
    "short_slowdown",
    "long_slowdown",
    "fairness_gap",
    "var_slowdown",
    "mean_response",
    "n_lost",
    "n_failures",
    "host_downtime",
    "fallback",
]

#: host availabilities swept (1.0 = the failure-free Figure-4 baseline).
AVAILABILITIES = (1.0, 0.99, 0.95, 0.9)

#: mean repair time, in multiples of the workload's mean service time.
_MTTR_SERVICE_MULTIPLE = 10.0


def _fault_model(
    availability: float, semantics: str, mean_service: float, seed: int
) -> FaultModel | None:
    """Fault model hitting ``availability``, or None for the baseline."""
    if availability >= 1.0:
        return None
    mttr = _MTTR_SERVICE_MULTIPLE * mean_service
    mtbf = mttr * availability / (1.0 - availability)
    return FaultModel(mtbf=mtbf, mttr=mttr, semantics=semantics, seed=seed)


def failure_sweep(
    config: ExperimentConfig,
    workload_name: str,
    experiment_id: str,
    load: float = 0.7,
    n_hosts: int = 2,
) -> list[dict]:
    """Sweep availability × failure semantics over the Figure-4 policies."""
    workload = get_workload(workload_name)
    base_jobs = config.jobs(max(workload.n_jobs, 30_000))
    rows: list[dict] = []
    per_policy: dict[tuple, list[dict]] = {}
    for rep in range(config.replications):
        seed = point_seed(config, experiment_id, workload_name, load, rep)
        train, test = make_split_trace(workload, load, n_hosts, base_jobs, seed)
        cutoffs = fit_sita_cutoffs(train, load)
        mean_service = float(np.mean(test.service_times))
        policies = sita_family(cutoffs) + [LeastWorkLeftPolicy()]
        # The short/long fairness split is the fitted SITA-E cutoff for
        # every policy, so the gap is comparable across policies.
        class_cutoff = cutoffs["e"]
        for semantics in SEMANTICS:
            for availability in AVAILABILITIES:
                if availability >= 1.0 and semantics != SEMANTICS[0]:
                    continue  # the failure-free baseline is semantics-free
                fault_seed = point_seed(
                    config, experiment_id, "faults", semantics, availability, rep
                )
                faults = _fault_model(
                    availability, semantics, mean_service, fault_seed
                )
                for policy in policies:
                    point = evaluate_policy(
                        test, policy, load, n_hosts, config, seed,
                        faults=faults, class_cutoff=class_cutoff,
                    )
                    row = point.as_row()
                    row["semantics"] = (
                        "none" if faults is None else semantics
                    )
                    row["availability"] = availability
                    key = (policy.name, row["semantics"], availability)
                    per_policy.setdefault(key, []).append(row)
    for reps in per_policy.values():
        rows.append(aggregate_replications(reps))
    # Post-process: slowdown penalty vs the policy's failure-free
    # baseline, and the long/short fairness gap.
    baseline = {
        r["policy"]: r["mean_slowdown"] for r in rows if r["semantics"] == "none"
    }
    for r in rows:
        base = baseline.get(r["policy"], math.nan)
        r["slowdown_penalty"] = r["mean_slowdown"] / base if base else math.nan
        short = r.get("short_slowdown", math.nan)
        r["fairness_gap"] = (
            r.get("long_slowdown", math.nan) / short if short else math.nan
        )
    return rows


@experiment(
    "failures",
    "SITA family + LWL under host failures (fault injection, 2 hosts, C90)",
)
def run_failures(config: ExperimentConfig) -> ExperimentResult:
    rows = failure_sweep(config, "c90", "failures")
    return ExperimentResult(
        experiment_id="failures",
        title="Load unbalancing under host failures: availability sweep, C90",
        columns=_COLUMNS,
        rows=rows,
        notes=(
            "availability 1.0 is the failure-free fig4 baseline; mttr = "
            f"{_MTTR_SERVICE_MULTIPLE:g} mean service times; fairness split "
            "at the fitted SITA-E cutoff"
        ),
    )
