"""Figure 7 — non-Poisson (bursty, scaled-trace) arrivals.

Section 6 of the paper replaces the Poisson arrival process with the
trace's own interarrival times, scaled to each target load — a much
burstier stream.  The PSC submission logs are proprietary, so (per
DESIGN.md §4) we substitute a lognormal-renewal arrival process with
interarrival SCV ≫ 1, rescaled to each load the same way; burstiness of
the interarrival times is the one property section 6's argument uses.
Cutoffs are the ones derived under the Poisson assumption, exactly as in
the paper ("we use the analytical cutoffs derived under the Poisson
assumption").

Expected shape: SITA-U-opt/fair still beat LWL for loads ≈ 0.6–0.9, and
LWL *closes the gap* as ρ → 1 because only LWL smooths arrival-time
variability.  The paper observes an outright crossover above ρ = 0.95 on
its proprietary scaled trace; on the synthetic workload the ratio climbs
monotonically toward 1 without crossing — the crossover location depends
on the log's exact burst structure (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from ..core.policies import LeastWorkLeftPolicy
from ..workloads.arrivals import RenewalArrivals
from ..workloads.catalog import get_workload
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import (
    evaluate_policy,
    fit_sita_cutoffs,
    make_split_trace,
    point_seed,
    sita_family,
)

__all__ = ["run_fig7", "BURSTY_SCV"]

#: interarrival squared coefficient of variation of the bursty stream.
BURSTY_SCV = 20.0

_LOADS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98)

_COLUMNS = [
    "policy",
    "load",
    "mean_slowdown",
    "var_slowdown",
    "mean_response",
]


@experiment("fig7", "Bursty (scaled-trace-like) arrivals: LWL vs SITA-U (C90)")
def run_fig7(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    base_jobs = config.jobs(workload.n_jobs)
    rows = []
    bursty = RenewalArrivals.bursty(rate=1.0, scv=BURSTY_SCV)
    for load in _LOADS:
        if load > max(config.max_load, 0.98):
            continue
        seed = point_seed(config, "fig7", load)
        # Very high loads converge slowly; give them longer runs.
        n_jobs = base_jobs * (2 if load >= 0.9 else 1)
        train, test = make_split_trace(
            workload, load, 2, n_jobs, seed, arrivals=bursty
        )
        # Paper protocol: cutoffs from the Poisson analysis (the size
        # distribution of the training half; arrivals don't enter).
        cutoffs = fit_sita_cutoffs(train, load, variants=("opt", "fair"))
        policies = [LeastWorkLeftPolicy()] + sita_family(cutoffs)
        for policy in policies:
            point = evaluate_policy(test, policy, load, 2, config, seed)
            rows.append(point.as_row())
    return ExperimentResult(
        experiment_id="fig7",
        title=f"Bursty arrivals (interarrival SCV {BURSTY_SCV:g}): LWL vs SITA-U",
        columns=_COLUMNS,
        rows=rows,
        notes=(
            "PSC interarrival logs are proprietary; a lognormal renewal "
            "process with matching burstiness substitutes (DESIGN.md §4)"
        ),
    )
