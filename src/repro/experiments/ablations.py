"""Ablations and extensions beyond the paper's figures.

* ``ablate_rr_sq`` — Round-Robin and Shortest-Queue, which the paper
  evaluated but cut from the plots ("their performance is not notable");
* ``ablate_tags`` — TAGS (unknown sizes, kill-and-restart) against
  SITA-U-opt (known sizes): how much of the unbalancing win needs size
  knowledge?
* ``ablate_estimates`` — section-7 robustness: SITA-U-fair under
  increasing user misclassification probability, and under lognormal
  multiplicative estimate noise;
* ``ablate_variability`` — the "workload characterisation matters"
  conclusion: sweep the service-time SCV (hyperexponential family) and
  watch the LWL-vs-SITA-E winner flip;
* ``ablate_fast_vs_event`` — the two simulator backends must agree
  exactly; reports their per-job waits agreement and runtimes.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..core.cutoffs import equal_load_cutoffs
from ..core.estimation import misclassify, multiplicative_noise
from ..core.policies import (
    EstimatedLWLPolicy,
    LeastWorkLeftPolicy,
    SITAPolicy,
    TAGSPolicy,
)
from ..sim.runner import simulate
from ..workloads.catalog import get_workload
from ..workloads.distributions import Hyperexponential
from ..workloads.synthetic import SyntheticWorkload
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import (
    balanced_policies,
    evaluate_policy,
    fit_sita_cutoffs,
    make_split_trace,
    point_seed,
)

__all__ = [
    "run_ablate_rr_sq",
    "run_ablate_tags",
    "run_ablate_estimates",
    "run_ablate_variability",
    "run_ablate_fast_vs_event",
]


@experiment("ablate_rr_sq", "Round-Robin and Shortest-Queue (cut from figure 2)")
def run_ablate_rr_sq(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    base_jobs = config.jobs(workload.n_jobs // 2)
    rows = []
    for load in config.sweep_loads():
        seed = point_seed(config, "ablate_rr_sq", load)
        _, test = make_split_trace(workload, load, 2, base_jobs, seed)
        for policy in balanced_policies(include_secondary=True):
            rows.append(evaluate_policy(test, policy, load, 2, config, seed).as_row())
    return ExperimentResult(
        experiment_id="ablate_rr_sq",
        title="Round-Robin and Shortest-Queue vs Random and LWL, 2 hosts, C90",
        columns=["policy", "load", "mean_slowdown", "var_slowdown", "mean_response"],
        rows=rows,
        notes="paper: RR ≈ Random (still sees full size variability), SQ ≈ LWL",
    )


@experiment("ablate_tags", "TAGS (unknown sizes) vs SITA-U-opt (known sizes)")
def run_ablate_tags(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    base_jobs = config.jobs(workload.n_jobs // 2)
    rows = []
    for load in (0.3, 0.5, 0.7):
        if load > config.max_load:
            continue
        seed = point_seed(config, "ablate_tags", load)
        train, test = make_split_trace(workload, load, 2, base_jobs, seed)
        cutoffs = fit_sita_cutoffs(train, load, variants=("opt",))
        policies = [
            SITAPolicy([cutoffs["opt"]], name="sita-u-opt"),
            TAGSPolicy([cutoffs["opt"]], name="tags@opt-cutoff"),
            LeastWorkLeftPolicy(),
        ]
        for policy in policies:
            result = simulate(test, policy, 2, rng=seed)
            summary = result.summary(warmup_fraction=config.warmup_fraction)
            wasted = (
                float(np.sum(result.wasted_work)) / float(np.sum(result.sizes))
                if result.wasted_work is not None
                else 0.0
            )
            rows.append(
                {
                    "policy": policy.name,
                    "load": load,
                    "mean_slowdown": summary.mean_slowdown,
                    "var_slowdown": summary.var_slowdown,
                    "mean_response": summary.mean_response,
                    "wasted_work_frac": wasted,
                }
            )
    return ExperimentResult(
        experiment_id="ablate_tags",
        title="TAGS vs SITA-U-opt vs LWL, 2 hosts, C90",
        columns=[
            "policy",
            "load",
            "mean_slowdown",
            "var_slowdown",
            "mean_response",
            "wasted_work_frac",
        ],
        rows=rows,
        notes="TAGS pays wasted (restarted) work to avoid needing size estimates",
    )


@experiment("ablate_estimates", "SITA-U-fair under size-estimate errors (section 7)")
def run_ablate_estimates(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    base_jobs = config.jobs(workload.n_jobs // 2)
    load = 0.7
    seed = point_seed(config, "ablate_estimates")
    train, test = make_split_trace(workload, load, 2, base_jobs, seed)
    cutoff = fit_sita_cutoffs(train, load, variants=("fair",))["fair"]
    policy = SITAPolicy([cutoff], name="sita-u-fair")
    rows = []
    # The two error directions behave very differently; decompose the harm
    # into the misclassified jobs themselves vs innocent bystanders.  The
    # paper's §7 claims errors "hurt only ... these small jobs"; the
    # decomposition shows where that holds and where it breaks.
    truly_short = test.service_times <= cutoff
    n_warm = int(test.n_jobs * config.warmup_fraction)
    for direction in ("short-to-long", "long-to-short", "both"):
        for flip_p in (0.0, 0.05, 0.1, 0.2):
            est = misclassify(
                test.service_times, cutoff, flip_p, rng=seed + 1,
                direction=direction,
            )
            flipped = (est <= cutoff) != truly_short
            result = simulate(test, policy, 2, rng=seed, size_estimates=est)
            s = result.summary(warmup_fraction=config.warmup_fraction)
            slow = result.slowdowns[n_warm:]
            fl = flipped[n_warm:]
            bystander_short = ~fl & truly_short[n_warm:]
            row = {
                "error_model": f"misclassify/{direction}",
                "error_level": flip_p,
                "mean_slowdown": s.mean_slowdown,
                "var_slowdown": s.var_slowdown,
                "mean_response": s.mean_response,
                "mean_slowdown_flipped": float(np.mean(slow[fl]))
                if fl.any()
                else math.nan,
                "mean_slowdown_bystander_short": float(
                    np.mean(slow[bystander_short])
                ),
            }
            rows.append(row)
    for factor in (1.0, 2.0, 4.0, 16.0):
        est = multiplicative_noise(test.service_times, factor, rng=seed + 2)
        result = simulate(test, policy, 2, rng=seed, size_estimates=est)
        s = result.summary(warmup_fraction=config.warmup_fraction)
        rows.append(
            {
                "error_model": "lognormal-noise",
                "error_level": factor,
                "mean_slowdown": s.mean_slowdown,
                "var_slowdown": s.var_slowdown,
                "mean_response": s.mean_response,
                "mean_slowdown_flipped": math.nan,
                "mean_slowdown_bystander_short": math.nan,
            }
        )
    # The practitioners' LWL (paper §1.2: summed user estimates) under the
    # same noise — it needs accurate magnitudes, not just one bit.
    for factor in (1.0, 2.0, 4.0, 16.0):
        est = multiplicative_noise(test.service_times, factor, rng=seed + 2)
        result = simulate(
            test, EstimatedLWLPolicy(), 2, rng=seed, size_estimates=est
        )
        s = result.summary(warmup_fraction=config.warmup_fraction)
        rows.append(
            {
                "error_model": "estimated-lwl-noise",
                "error_level": factor,
                "mean_slowdown": s.mean_slowdown,
                "var_slowdown": s.var_slowdown,
                "mean_response": s.mean_response,
                "mean_slowdown_flipped": math.nan,
                "mean_slowdown_bystander_short": math.nan,
            }
        )
    lwl = evaluate_policy(test, LeastWorkLeftPolicy(), load, 2, config, seed)
    rows.append(
        {
            "error_model": "lwl-reference",
            "error_level": math.nan,
            "mean_slowdown": lwl.summary.mean_slowdown,
            "var_slowdown": lwl.summary.var_slowdown,
            "mean_response": lwl.summary.mean_response,
            "mean_slowdown_flipped": math.nan,
            "mean_slowdown_bystander_short": math.nan,
        }
    )
    return ExperimentResult(
        experiment_id="ablate_estimates",
        title="SITA-U-fair robustness to size-estimate errors (load 0.7, C90)",
        columns=[
            "error_model",
            "error_level",
            "mean_slowdown",
            "var_slowdown",
            "mean_response",
            "mean_slowdown_flipped",
            "mean_slowdown_bystander_short",
        ],
        rows=rows,
        notes=(
            "short-to-long errors hurt (only) the flipped jobs themselves "
            "(the paper's claim); long-to-short errors *benefit* the "
            "flipped elephants while harming bystander shorts — an "
            "incentive to game the declared size the paper overlooks"
        ),
    )


@experiment("ablate_variability", "Best policy vs service-time variability")
def run_ablate_variability(config: ExperimentConfig) -> ExperimentResult:
    load = 0.7
    rows = []
    for scv in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0):
        dist = Hyperexponential.fit_balanced(mean=1000.0, scv=scv)
        workload = SyntheticWorkload(
            name=f"h2-scv{scv:g}", service_dist=dist, n_jobs=config.jobs(40_000)
        )
        seed = point_seed(config, "ablate_variability", scv)
        train, test = make_split_trace(workload, load, 2, workload.n_jobs, seed)
        from ..workloads.distributions import Empirical

        cutoff = equal_load_cutoffs(Empirical(train.service_times), 2)
        policies = [LeastWorkLeftPolicy(), SITAPolicy(cutoff, name="sita-e")]
        for policy in policies:
            point = evaluate_policy(test, policy, load, 2, config, seed)
            rows.append({"scv": scv, **point.as_row()})
    return ExperimentResult(
        experiment_id="ablate_variability",
        title="LWL vs SITA-E as service variability grows (H2 workloads, load 0.7)",
        columns=["scv", "policy", "mean_slowdown", "var_slowdown", "mean_response"],
        rows=rows,
        notes="paper conclusion: the best policy depends on the size distribution",
    )


@experiment("ablate_fast_vs_event", "Vectorised kernels vs event engine")
def run_ablate_fast_vs_event(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    n_jobs = min(config.jobs(20_000), 20_000)
    trace = workload.make_trace(
        load=0.7, n_hosts=2, n_jobs=n_jobs, rng=point_seed(config, "fastvsevent")
    )
    from ..workloads.distributions import Empirical

    cutoff = equal_load_cutoffs(Empirical(trace.service_times), 2)
    rows = []
    for policy_factory in (
        lambda: LeastWorkLeftPolicy(),
        lambda: SITAPolicy(cutoff, name="sita-e"),
    ):
        timings = {}
        results = {}
        for backend in ("fast", "event"):
            policy = policy_factory()
            t0 = time.perf_counter()
            results[backend] = simulate(trace, policy, 2, rng=1, backend=backend)
            timings[backend] = time.perf_counter() - t0
        max_gap = float(
            np.max(np.abs(results["fast"].wait_times - results["event"].wait_times))
        )
        rows.append(
            {
                "policy": results["fast"].policy_name,
                "n_jobs": n_jobs,
                "fast_seconds": timings["fast"],
                "event_seconds": timings["event"],
                "speedup": timings["event"] / max(timings["fast"], 1e-12),
                "max_wait_gap": max_gap,
            }
        )
    return ExperimentResult(
        experiment_id="ablate_fast_vs_event",
        title="Backend agreement and speedup (2 hosts, load 0.7, C90)",
        columns=[
            "policy",
            "n_jobs",
            "fast_seconds",
            "event_seconds",
            "speedup",
            "max_wait_gap",
        ],
        rows=rows,
        notes="max_wait_gap must be ~0: the backends implement the same model",
    )
