"""Deterministic process-pool sweep executor.

Every figure in the paper is a sweep: policies × loads × replications of
*independent* simulated points.  This module fans those points out over a
pool of worker processes while keeping the one property the whole
determinism stack (``repro audit``, SIM101–SIM106) is built on: **the
rows are bit-identical to a serial run**.

How a parallel run works (``run_experiment(..., workers=N)``):

1. **Collect pass** — the experiment driver runs once with a point
   interceptor installed (:func:`repro.experiments.common.set_point_interceptor`).
   Each :func:`~repro.experiments.common.evaluate_policy` call either
   hits the checkpoint (``--resume``; completed keys are pre-filtered in
   one :meth:`~repro.experiments.base.Checkpoint.keys` scan) or records a
   :class:`PointSpec` and returns a NaN placeholder, so the driver
   completes structurally and its rows are discarded.
2. **Dispatch** — the recorded points are submitted to a
   ``ProcessPoolExecutor`` in collection order and the futures are
   consumed **in submission order** (satisfying the repo's own SIM106
   ordered-consumption rule; completion order never leaks into results).
   Each unique evaluation trace crosses the process boundary **once**,
   zero-copy, through a :class:`TraceArena` of
   ``multiprocessing.shared_memory`` segments rather than being pickled
   per point.  Workers run the exact serial code path
   (:func:`~repro.experiments.common.compute_point` — including the
   per-point SIGALRM budget, enforceable because each worker computes on
   its own main thread) and write through the same atomic
   :class:`~repro.experiments.base.Checkpoint` store, so a run killed
   mid-dispatch resumes exactly like a serial one.
3. **Replay pass** — the driver runs a second time; every intercepted
   point now returns its pool-computed value, so rows are assembled in
   the driver's own deterministic order.  Trace generation is already
   memoised (:func:`~repro.experiments.common.make_split_trace`), so the
   replay re-walk costs bookkeeping, not simulation.

A point the replay pass asks for that the collect pass never recorded
(possible only if a driver's control flow depends on point *values*) is
computed serially on the spot — correctness never depends on the driver
being two-pass friendly, only the speedup does.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from ..workloads.traces import Trace
from .base import (
    Checkpoint,
    ExperimentConfig,
    ExperimentResult,
    active_checkpoint,
    config_signature,
    get_experiment,
)
from .common import (
    SweepPoint,
    compute_point,
    placeholder_point,
    point_key,
    set_point_interceptor,
)

__all__ = [
    "ParallelSweepExecutor",
    "PointSpec",
    "TraceArena",
    "TraceRef",
    "run_parallel_experiment",
]

#: traces below this many jobs are pickled inline with the task — the
#: fixed cost of a shared-memory segment isn't worth it for tiny arrays.
SHARE_THRESHOLD_JOBS = 4096


# ---------------------------------------------------------------------------
# zero-copy trace transport
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceRef:
    """Pickle-cheap handle to an evaluation trace.

    Either a shared-memory reference (``shm_name`` set; the segment
    holds three contiguous ``n_jobs``-long arrays: arrivals ``f8``,
    services ``f8``, processors ``i8``) or an inline payload for traces
    too small to be worth a segment.
    """

    n_jobs: int
    name: str
    shm_name: str | None = None
    inline: tuple | None = None  # (arrivals, services, processors)


class TraceArena:
    """Parent-side pool of shared-memory segments, one per unique trace.

    Many sweep points share one evaluation trace (every policy at a
    (load, seed) coordinate); the arena dedupes by object identity so
    each trace is copied into shared memory exactly once per run, and
    the per-task pickle is just a :class:`TraceRef`.  ``close`` unlinks
    every segment; the parent owns their lifetime.
    """

    def __init__(self, share_threshold: int = SHARE_THRESHOLD_JOBS) -> None:
        self._refs: dict[int, TraceRef] = {}
        self._segments: list[shared_memory.SharedMemory] = []
        self._keepalive: list[Trace] = []  # pin id()s for the run's duration
        self.share_threshold = share_threshold

    def share(self, trace: Trace) -> TraceRef:
        """Return a :class:`TraceRef` for ``trace``, creating it on first use."""
        ref = self._refs.get(id(trace))
        if ref is not None:
            return ref
        n = trace.n_jobs
        if n < self.share_threshold:
            ref = TraceRef(
                n_jobs=n,
                name=trace.name,
                inline=(
                    np.ascontiguousarray(trace.arrival_times),
                    np.ascontiguousarray(trace.service_times),
                    np.ascontiguousarray(trace.processors, dtype=np.int64),
                ),
            )
        else:
            try:
                shm = shared_memory.SharedMemory(create=True, size=3 * 8 * n)
            except OSError:  # no usable /dev/shm: fall back to pickling
                ref = TraceRef(
                    n_jobs=n,
                    name=trace.name,
                    inline=(
                        np.ascontiguousarray(trace.arrival_times),
                        np.ascontiguousarray(trace.service_times),
                        np.ascontiguousarray(trace.processors, dtype=np.int64),
                    ),
                )
            else:
                self._segments.append(shm)
                arrivals = np.ndarray(n, dtype=np.float64, buffer=shm.buf)
                services = np.ndarray(n, dtype=np.float64, buffer=shm.buf, offset=8 * n)
                procs = np.ndarray(n, dtype=np.int64, buffer=shm.buf, offset=16 * n)
                arrivals[:] = trace.arrival_times
                services[:] = trace.service_times
                procs[:] = trace.processors
                ref = TraceRef(n_jobs=n, name=trace.name, shm_name=shm.name)
        self._refs[id(trace)] = ref
        self._keepalive.append(trace)
        return ref

    @property
    def n_shared(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Unlink every segment (workers must be joined first)."""
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._refs.clear()
        self._keepalive.clear()


#: worker-side cache of materialised traces, keyed by segment name (shared
#: traces) — attach + validate once per worker, reuse for every point.
_WORKER_TRACES: dict[str, Trace] = {}
#: worker-side write-through checkpoint (None when checkpointing is off).
_WORKER_CHECKPOINT: Checkpoint | None = None


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker bookkeeping.

    The parent owns every segment's lifetime.  Before 3.13 (``track=``
    keyword), attaching registers the segment with the resource tracker
    unconditionally (bpo-39959), which either double-unlinks at worker
    exit (spawn: per-process trackers) or corrupts the shared tracker's
    cache (fork); suppressing registration for the attach is the
    standard workaround.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:  # pragma: no cover - version-dependent
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attach_trace(ref: TraceRef) -> Trace:
    """Materialise a :class:`TraceRef` inside a worker process."""
    if ref.inline is not None:
        arrivals, services, procs = ref.inline
        return Trace(arrivals, services, procs, name=ref.name)
    assert ref.shm_name is not None
    cached = _WORKER_TRACES.get(ref.shm_name)
    if cached is not None:
        return cached
    shm = _attach_untracked(ref.shm_name)
    n = ref.n_jobs
    arrivals = np.ndarray(n, dtype=np.float64, buffer=shm.buf)
    services = np.ndarray(n, dtype=np.float64, buffer=shm.buf, offset=8 * n)
    procs = np.ndarray(n, dtype=np.int64, buffer=shm.buf, offset=16 * n)
    trace = Trace(arrivals, services, procs, name=ref.name)
    trace._shm = shm  # keep the mapping alive as long as the trace
    _WORKER_TRACES[ref.shm_name] = trace
    return trace


# ---------------------------------------------------------------------------
# the work unit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PointSpec:
    """One recorded simulated point, ready for dispatch."""

    key: str
    trace: Trace
    policy: Any
    load: float
    n_hosts: int
    config: ExperimentConfig
    seed: int
    faults: Any
    class_cutoff: float | None


@dataclass(frozen=True)
class _Task:
    """The pickled form of a :class:`PointSpec` (trace → TraceRef)."""

    key: str
    trace_ref: TraceRef
    policy: Any
    load: float
    n_hosts: int
    config: ExperimentConfig
    seed: int
    faults: Any
    class_cutoff: float | None


def _worker_init(checkpoint_dir: str | None, signature: str) -> None:
    """Pool initializer: open the write-through checkpoint store."""
    global _WORKER_CHECKPOINT
    if checkpoint_dir is not None:
        _WORKER_CHECKPOINT = Checkpoint(checkpoint_dir, signature=signature)


def _run_task(task: _Task) -> dict:
    """Execute one point in a pool worker; returns the point's JSON form.

    Exactly the serial code path (:func:`compute_point`), including the
    SIGALRM per-point budget — a worker process computes on its own main
    thread, so the timeout that was unenforceable from a thread pool is
    enforceable here.  Completed values are written through the atomic
    checkpoint store before being returned, so a parent killed
    mid-dispatch loses at most in-flight points.
    """
    trace = _attach_trace(task.trace_ref)
    value = compute_point(
        trace,
        task.policy,
        task.load,
        task.n_hosts,
        task.config,
        task.seed,
        task.faults,
        task.class_cutoff,
    )
    if _WORKER_CHECKPOINT is not None:
        _WORKER_CHECKPOINT.put(task.key, value)
    return value


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------


class ParallelSweepExecutor:
    """Collect → dispatch → replay coordinator for one experiment run.

    Install via :meth:`installed`; while active, every
    :func:`~repro.experiments.common.evaluate_policy` call routes
    through :meth:`_intercept`.
    """

    def __init__(
        self,
        workers: int,
        checkpoint: Checkpoint | None = None,
        mp_context: str | None = None,
    ) -> None:
        if workers < 2:
            raise ValueError(f"need at least 2 workers, got {workers}")
        self.workers = workers
        self.checkpoint = checkpoint
        self.phase = "collect"
        self.pending: list[PointSpec] = []
        self.results: dict[str, dict] = {}
        #: points answered from the checkpoint without dispatch (--resume).
        self.n_resumed = 0
        #: points actually executed in the pool.
        self.n_dispatched = 0
        #: replay-pass misses computed serially (driver value-dependent
        #: control flow; see module docstring).
        self.n_serial_fallback = 0
        self._completed_keys = (
            frozenset(checkpoint.keys()) if checkpoint is not None else frozenset()
        )
        if mp_context is None:
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._mp_context = mp_context

    # -- interception ----------------------------------------------------

    @contextmanager
    def installed(self) -> Iterator["ParallelSweepExecutor"]:
        previous = set_point_interceptor(self._intercept)
        try:
            yield self
        finally:
            set_point_interceptor(previous)

    def _intercept(
        self,
        test: Trace,
        policy,
        load: float,
        n_hosts: int,
        config: ExperimentConfig,
        seed: int,
        faults,
        class_cutoff: float | None,
    ) -> SweepPoint:
        key = point_key(policy, load, n_hosts, seed, faults, class_cutoff)
        value = self.results.get(key)
        if value is not None:
            return SweepPoint.from_json(value)
        if self.phase == "collect":
            if key in self._completed_keys:
                stored = self.checkpoint.get(key)
                if stored is not None:
                    self.results[key] = stored
                    self.n_resumed += 1
                    return SweepPoint.from_json(stored)
            self.pending.append(
                PointSpec(
                    key=key,
                    trace=test,
                    policy=policy,
                    load=load,
                    n_hosts=n_hosts,
                    config=config,
                    seed=seed,
                    faults=faults,
                    class_cutoff=class_cutoff,
                )
            )
            return placeholder_point(policy, load, n_hosts, class_cutoff)
        # Replay pass: a key the collect pass never saw means the
        # driver's control flow depends on point values — compute it
        # serially so the rows stay correct (and identical to serial).
        self.n_serial_fallback += 1
        value = compute_point(
            test, policy, load, n_hosts, config, seed, faults, class_cutoff
        )
        if self.checkpoint is not None:
            self.checkpoint.put(key, value)
        self.results[key] = value
        return SweepPoint.from_json(value)

    # -- dispatch --------------------------------------------------------

    def dispatch(self) -> None:
        """Run every pending point in the pool; results land in order.

        Futures are consumed strictly in submission order (the repo's
        SIM106 rule): worker completion order cannot influence anything
        downstream.  Deduplicates keys defensively (a driver asking for
        the same point twice gets one simulation, like the serial
        checkpoint path).
        """
        specs: list[PointSpec] = []
        seen: set[str] = set()
        for spec in self.pending:
            if spec.key not in seen:
                seen.add(spec.key)
                specs.append(spec)
        self.pending.clear()
        if not specs:
            return
        arena = TraceArena()
        ckpt_dir = (
            str(self.checkpoint.directory) if self.checkpoint is not None else None
        )
        signature = self.checkpoint.signature if self.checkpoint is not None else ""
        try:
            tasks = [
                _Task(
                    key=s.key,
                    trace_ref=arena.share(s.trace),
                    policy=s.policy,
                    load=s.load,
                    n_hosts=s.n_hosts,
                    config=s.config,
                    seed=s.seed,
                    faults=s.faults,
                    class_cutoff=s.class_cutoff,
                )
                for s in specs
            ]
            ctx = multiprocessing.get_context(self._mp_context)
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(tasks)),
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(ckpt_dir, signature),
            ) as pool:
                futures = [pool.submit(_run_task, task) for task in tasks]
                for spec, future in zip(specs, futures):
                    self.results[spec.key] = future.result()
                    self.n_dispatched += 1
        finally:
            arena.close()


def run_parallel_experiment(
    experiment_id: str,
    config: ExperimentConfig | None = None,
    workers: int = 2,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
) -> ExperimentResult:
    """Run one experiment with its points fanned out over ``workers``.

    The parallel twin of :func:`repro.experiments.base.run_experiment`
    (which routes here for ``workers > 1``): same checkpoint semantics,
    same rows, byte-for-byte.  Drivers that never call
    :func:`~repro.experiments.common.evaluate_policy` (purely analytic
    tables) complete in the collect pass and are returned as-is.
    """
    fn = get_experiment(experiment_id)
    config = config if config is not None else ExperimentConfig()
    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = Checkpoint(
            Path(checkpoint_dir) / experiment_id,
            signature=config_signature(experiment_id, config),
        )
        if not resume:
            checkpoint.clear()
    executor = ParallelSweepExecutor(workers=workers, checkpoint=checkpoint)
    # The active checkpoint stays installed for any non-point
    # ``checkpointed()`` values a driver stores directly.
    with active_checkpoint(checkpoint), executor.installed():
        executor.phase = "collect"
        collected = fn(config)
        if not executor.pending:
            # Nothing to simulate (analytic driver, or a fully
            # checkpointed resume): the collect pass produced real rows.
            return collected
        executor.dispatch()
        executor.phase = "replay"
        return fn(config)
