"""Shared machinery for the experiment drivers.

The paper's protocol, encoded once:

1. generate a workload trace at the target load (§2.2: service times from
   the trace/distribution, Poisson arrivals unless the experiment says
   otherwise);
2. *fit* any SITA cutoffs on the first half of the trace — analytically,
   by applying Theorem 1 to the empirical size distribution of that half
   (§4.1: "Note that for a given cutoff we can compute the load and E{X²}
   at each host from the trace data.  Theorem 1 then allows us to
   determine the expected slowdown…");
3. *evaluate* every policy on the second half;
4. report mean slowdown, variance of slowdown and mean response time
   after warmup trimming.
"""

from __future__ import annotations

import dataclasses
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.cutoffs import equal_load_cutoffs
from ..core.search import analytic_cutoff_pair
from ..core.policies import (
    GroupedSITAPolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SITAPolicy,
    ShortestQueuePolicy,
)
from ..sim.faults import FaultModel
from ..sim.metrics import Summary
from ..sim.runner import simulate
from ..workloads.arrivals import ArrivalProcess
from ..workloads.distributions import Empirical, ServiceDistribution
from ..workloads.synthetic import SyntheticWorkload
from ..workloads.traces import Trace
from .base import ExperimentConfig, checkpointed
from .base import run_point as base_run_point

__all__ = [
    "SweepPoint",
    "make_split_trace",
    "clear_trace_cache",
    "fit_sita_cutoffs",
    "compute_point",
    "evaluate_policy",
    "placeholder_point",
    "point_key",
    "set_point_interceptor",
    "balanced_policies",
    "sita_family",
    "grouped_sita",
    "point_seed",
    "aggregate_replications",
]


def point_seed(config: ExperimentConfig, *coords) -> int:
    """Derive a reproducible per-point seed from arbitrary coordinates."""
    h = int(config.seed)
    for c in coords:
        for b in str(c).encode():
            h = (h * 1000003 + b) & (2**63 - 1)
    return h


@dataclass(frozen=True)
class SweepPoint:
    """One (policy, load) measurement."""

    policy: str
    load: float
    n_hosts: int
    summary: Summary
    #: True when the fast kernel failed its output check and this point
    #: was gracefully re-run on the event engine (see docs/ROBUSTNESS.md).
    fallback: bool = False
    #: fault-injection statistics (all zero without a fault model).
    n_lost: int = 0
    n_failures: int = 0
    host_downtime: float = 0.0
    #: mean slowdown of jobs below/above ``class_cutoff`` (NaN when no
    #: cutoff was requested) — the paper's fairness conditioning.
    short_slowdown: float = math.nan
    long_slowdown: float = math.nan

    def as_row(self) -> dict:
        row = {
            "policy": self.policy,
            "load": self.load,
            "n_hosts": self.n_hosts,
            **self.summary.as_row(),
            "fallback": self.fallback,
            "n_lost": self.n_lost,
            "n_failures": self.n_failures,
            "host_downtime": self.host_downtime,
        }
        # The fairness split is only present when a cutoff was requested;
        # NaN placeholders would poison row equality (NaN != NaN).
        if not math.isnan(self.short_slowdown):
            row["short_slowdown"] = self.short_slowdown
            row["long_slowdown"] = self.long_slowdown
        return row

    def to_json(self) -> dict:
        """JSON-serialisable form (floats round-trip bit-exactly)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, d: dict) -> "SweepPoint":
        s = dict(d["summary"])
        s["host_load_fraction"] = tuple(s["host_load_fraction"])
        s["host_job_fraction"] = tuple(s["host_job_fraction"])
        return cls(**{**d, "summary": Summary(**s)})


#: LRU of generated (train, test) splits.  Many policies are evaluated at
#: one (load, seed) coordinate, and a parallel run walks the driver twice
#: (collect + replay, see :mod:`repro.experiments.parallel`) — without the
#: cache every walk re-samples the same bounded-Pareto/lognormal trace.
#: Keys hold strong references to the workload/arrivals objects, so
#: identity-based hashing can never alias a recycled ``id()``.
_TRACE_CACHE: OrderedDict[tuple, tuple[Trace, Trace]] = OrderedDict()
_TRACE_CACHE_MAX = 16


def clear_trace_cache() -> None:
    """Drop every memoised (train, test) split (mainly for tests)."""
    _TRACE_CACHE.clear()


def make_split_trace(
    workload: SyntheticWorkload,
    load: float,
    n_hosts: int,
    n_jobs: int,
    seed: int,
    arrivals: ArrivalProcess | None = None,
) -> tuple[Trace, Trace]:
    """Generate a trace and split it into (train, test) halves.

    Memoised: generation is deterministic given an integer ``seed``, so
    repeated calls with the same coordinates return the same (cached)
    pair — traces are treated as immutable throughout.  Only integer
    seeds are cached (a caller-supplied Generator mutates as it samples,
    so two calls with one Generator legitimately differ).
    """
    cacheable = isinstance(seed, int) and not isinstance(seed, bool)
    if cacheable:
        key = (workload, load, n_hosts, n_jobs, seed, arrivals)
        try:
            hit = _TRACE_CACHE[key]
        except KeyError:
            pass
        except TypeError:  # unhashable workload/arrivals: just recompute
            cacheable = False
        else:
            _TRACE_CACHE.move_to_end(key)
            return hit
    trace = workload.make_trace(
        load=load, n_hosts=n_hosts, n_jobs=n_jobs, rng=seed, arrivals=arrivals
    )
    split = trace.split(0.5)
    if cacheable:
        _TRACE_CACHE[key] = split
        while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
            _TRACE_CACHE.popitem(last=False)
    return split


def fit_sita_cutoffs(
    train: Trace, load: float, variants: tuple[str, ...] = ("e", "opt", "fair")
) -> dict[str, float]:
    """Fit the 2-host SITA cutoffs on a training trace.

    ``"e"`` equalises load; ``"opt"`` minimises the analytic mean slowdown
    of the empirical (training) size distribution; ``"fair"`` equalises
    the analytic short/long slowdowns — the paper's §4.1 procedure.
    """
    unknown = [v for v in variants if v not in ("e", "opt", "fair")]
    if unknown:
        raise ValueError(f"unknown SITA variant {unknown[0]!r}")
    dist = Empirical(train.service_times)
    # One engine call derives opt and fair off a shared evaluation axis
    # (and a shared moment memo — see repro.core.search).
    want = tuple(dict.fromkeys(v for v in variants if v != "e"))
    pair = analytic_cutoff_pair(load, dist, want=want) if want else {}
    out: dict[str, float] = {}
    for v in variants:
        if v == "e":
            out[v] = float(equal_load_cutoffs(dist, 2)[0])
        else:
            out[v] = pair[v]
    return out


def point_key(
    policy,
    load: float,
    n_hosts: int,
    seed: int,
    faults: FaultModel | None = None,
    class_cutoff: float | None = None,
) -> str:
    """Canonical checkpoint/dispatch key for one simulated point."""
    return "|".join(
        [
            f"policy={policy.name}",
            f"h={n_hosts}",
            f"load={load!r}",
            f"seed={seed}",
            f"faults={faults.describe() if faults is not None else 'none'}",
            f"cutoff={class_cutoff!r}",
        ]
    )


def compute_point(
    test: Trace,
    policy,
    load: float,
    n_hosts: int,
    config: ExperimentConfig,
    seed: int,
    faults: FaultModel | None = None,
    class_cutoff: float | None = None,
) -> dict:
    """Simulate one point and return its JSON-serialisable SweepPoint.

    The single code path behind both the serial harness and the parallel
    workers (:mod:`repro.experiments.parallel`) — running it in-process
    or in a pool worker is bit-identical by construction.  The config's
    per-point SIGALRM budget applies wherever this runs: in a pool the
    worker process enforces it on its own main thread.
    """
    result = base_run_point(
        lambda: simulate(
            test, policy, n_hosts, rng=seed, faults=faults,
            on_kernel_failure="fallback",
        ),
        timeout=config.point_timeout,
        retries=config.point_retries,
        label=f"{policy.name} @ load {load:g}",
    )
    trimmed = result.trimmed(warmup_fraction=config.warmup_fraction)
    short = long = math.nan
    if class_cutoff is not None:
        short, long = trimmed.class_mean_slowdowns(class_cutoff)
    return SweepPoint(
        policy=policy.name,
        load=load,
        n_hosts=n_hosts,
        summary=result.summary(warmup_fraction=config.warmup_fraction),
        fallback=result.backend == "event-fallback",
        n_lost=result.n_lost,
        n_failures=result.n_failures,
        host_downtime=result.host_downtime,
        short_slowdown=short,
        long_slowdown=long,
    ).to_json()


def placeholder_point(
    policy, load: float, n_hosts: int, class_cutoff: float | None = None
) -> SweepPoint:
    """A shape-correct stand-in for a not-yet-computed point.

    The parallel executor's collect pass returns these so a driver can
    complete its sweep structurally (rows are assembled and discarded)
    while the real simulations are recorded for dispatch.  Coordinates
    are real; every metric is NaN.  When a fairness ``class_cutoff`` is
    requested the short/long fields are 0.0 rather than NaN so the
    placeholder row keeps the same columns a real row would have
    (``as_row`` drops NaN fairness fields).
    """
    nan = math.nan
    summary = Summary(
        n_jobs=0,
        mean_slowdown=nan,
        var_slowdown=nan,
        mean_waiting_slowdown=nan,
        mean_response=nan,
        var_response=nan,
        mean_wait=nan,
        max_slowdown=nan,
        p95_slowdown=nan,
        p99_slowdown=nan,
        host_load_fraction=tuple(0.0 for _ in range(n_hosts)),
        host_job_fraction=tuple(0.0 for _ in range(n_hosts)),
    )
    fair = 0.0 if class_cutoff is not None else nan
    return SweepPoint(
        policy=policy.name,
        load=load,
        n_hosts=n_hosts,
        summary=summary,
        short_slowdown=fair,
        long_slowdown=fair,
    )


#: hook installed by :mod:`repro.experiments.parallel` to intercept every
#: simulated point; ``None`` means the plain serial path.
_POINT_INTERCEPTOR: Callable[..., "SweepPoint"] | None = None


def set_point_interceptor(
    interceptor: Callable[..., "SweepPoint"] | None,
) -> Callable[..., "SweepPoint"] | None:
    """Install ``interceptor`` on every :func:`evaluate_policy` call;
    return the previous one so callers can restore it.

    Not a public extension point; the supported consumer is the parallel
    sweep executor, which uses it to record points during its collect
    pass and substitute pool-computed results during replay.
    """
    global _POINT_INTERCEPTOR
    previous = _POINT_INTERCEPTOR
    _POINT_INTERCEPTOR = interceptor
    return previous


def evaluate_policy(
    test: Trace,
    policy,
    load: float,
    n_hosts: int,
    config: ExperimentConfig,
    seed: int,
    faults: FaultModel | None = None,
    class_cutoff: float | None = None,
) -> SweepPoint:
    """Run one policy on the evaluation trace and summarise.

    This is the harness's one simulated-point entry: it consults the
    active checkpoint (so ``--resume`` skips completed points), enforces
    the config's per-point wall-clock budget, and degrades gracefully
    from the fast kernels to the event engine (``fallback`` records
    that).  With ``faults`` the point runs under fault injection; with
    ``class_cutoff`` the short/long mean slowdowns are recorded for
    fairness reporting.  Under an active parallel executor
    (``run_experiment(..., workers=N)``) the point is dispatched to a
    worker pool instead — see :mod:`repro.experiments.parallel`.
    """
    if _POINT_INTERCEPTOR is not None:
        return _POINT_INTERCEPTOR(
            test=test,
            policy=policy,
            load=load,
            n_hosts=n_hosts,
            config=config,
            seed=seed,
            faults=faults,
            class_cutoff=class_cutoff,
        )
    key = point_key(policy, load, n_hosts, seed, faults, class_cutoff)
    return SweepPoint.from_json(
        checkpointed(
            key,
            lambda: compute_point(
                test, policy, load, n_hosts, config, seed, faults, class_cutoff
            ),
        )
    )


def aggregate_replications(rows: list[dict]) -> dict:
    """Average one (policy, load) point over independent replications.

    Numeric fields are averaged; a ``ci_mean_slowdown`` half-width
    (t-free, 1.96·σ/√R — fine for the R ≥ 3 regime it's used in) and
    ``n_reps`` are added.  Non-numeric fields must agree across rows.
    """
    if not rows:
        raise ValueError("no replications to aggregate")
    if len(rows) == 1:
        return {**rows[0], "n_reps": 1}
    out: dict = {}
    for key in rows[0]:
        values = [r[key] for r in rows]
        if isinstance(values[0], bool):
            # e.g. the fast-kernel ``fallback`` flag: the aggregate is
            # flagged if *any* replication had to fall back.
            out[key] = any(values)
        elif isinstance(values[0], (int, float)):
            # Keep shared coordinates (load, n_hosts) exact.
            if all(v == values[0] for v in values):
                out[key] = values[0]
            else:
                out[key] = float(np.mean(values))
        else:
            if any(v != values[0] for v in values):
                raise ValueError(f"replications disagree on field {key!r}")
            out[key] = values[0]
    slows = np.array([r["mean_slowdown"] for r in rows], dtype=float)
    out["n_reps"] = len(rows)
    out["ci_mean_slowdown"] = float(
        1.96 * np.std(slows, ddof=1) / math.sqrt(len(rows))
    )
    return out


def balanced_policies(include_secondary: bool = False) -> list:
    """The load-balancing policies of figure 2 (Random, LWL; optionally
    Round-Robin and Shortest-Queue, which the paper measured but omitted
    from the plots)."""
    policies = [RandomPolicy(), LeastWorkLeftPolicy()]
    if include_secondary:
        policies += [RoundRobinPolicy(), ShortestQueuePolicy()]
    return policies


def sita_family(cutoffs: dict[str, float]) -> list[SITAPolicy]:
    """Instantiate SITA policies from fitted cutoffs."""
    names = {"e": "sita-e", "opt": "sita-u-opt", "fair": "sita-u-fair"}
    return [SITAPolicy([c], name=names[v]) for v, c in cutoffs.items()]


def grouped_sita(
    cutoff: float,
    n_hosts: int,
    dist: ServiceDistribution,
    name: str,
    load: float | None = None,
) -> GroupedSITAPolicy:
    """Section-5 grouped SITA with an analytically chosen host split.

    When ``load`` is given the short-group size minimises the predicted
    mean slowdown (:func:`repro.core.cutoffs.optimal_group_split`);
    otherwise it falls back to load-proportional rounding.
    """
    if load is not None:
        from ..core.cutoffs import optimal_group_split

        try:
            n_short = optimal_group_split(load, dist, n_hosts, cutoff)
            return GroupedSITAPolicy(cutoff, n_short, name=name)
        except ValueError:
            pass  # fall back to the proportional split below
    f = dist.partial_moment(1.0, 0.0, cutoff) / dist.mean
    n_short = int(np.clip(round(n_hosts * f), 1, n_hosts - 1))
    return GroupedSITAPolicy(cutoff, n_short, name=name)
