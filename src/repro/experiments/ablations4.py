"""Fourth ablation wave: tail metrics.

``ablate_tails`` — the paper reports the *variance* of slowdown as its
predictability metric; tail percentiles (p95/p99) are what a modern SLO
would use.  This experiment compares simulated p95/p99 slowdowns against
fully analytic values obtained by Pollaczek–Khinchine *transform*
inversion (:mod:`repro.analysis.transforms`), for SITA-E and SITA-U-fair:
each SITA host is an M/G/1 on its size slice, so the system-wide slowdown
tail is the job-fraction mixture ``P(S > x) = Σ p_i · P_i(W/X > x − 1)``.
Agreement here validates the entire analytic stack end-to-end, one level
deeper than the mean comparisons of figures 8–9.
"""

from __future__ import annotations

import math

import numpy as np
from ..analysis.transforms import LaplaceEvaluator, mg1_waiting_cdf
from ..core.cutoffs import equal_load_cutoffs, fair_cutoff
from ..core.policies import SITAPolicy
from ..sim.runner import simulate
from ..workloads.catalog import get_workload
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import point_seed

__all__ = ["run_ablate_tails"]

_LOAD = 0.7
_QUANTILES = (0.95, 0.99)


def _sita_slowdown_quantiles(load, dist, cutoff, quantiles, n_size_grid=96):
    """Analytic quantiles of the response slowdown under a 2-host SITA.

    One batched transform inversion covers the whole (y-grid × size-grid)
    at once; quantiles come from log-log interpolation of the resulting
    system CCDF curve — orders of magnitude cheaper than root-finding
    with per-probe inversions.
    """
    lam = 2.0 * load / dist.mean
    y_grid = np.logspace(-2.0, 7.0, 90)
    ccdf = np.zeros(y_grid.size)
    for lo, hi in ((0.0, cutoff), (cutoff, math.inf)):
        p = dist.prob_interval(lo, hi)
        cond = dist.conditional(lo, hi)
        qs = (np.arange(n_size_grid) + 0.5) / n_size_grid
        xs = np.array([cond.ppf(v) for v in qs])
        lt = LaplaceEvaluator(cond, n_grid=1500)
        # Invert the (smooth, monotone) waiting CDF once on a log grid of
        # thresholds and interpolate for every (y, size) pair — hundreds of
        # inversions instead of y_grid × size_grid of them.
        thresholds = np.outer(y_grid, xs)
        t_grid = np.logspace(
            math.log10(thresholds.min()), math.log10(thresholds.max()), 200
        )
        cdf_grid = np.asarray(
            mg1_waiting_cdf(lam * p, cond, t_grid, evaluator=lt)
        )
        cdf_grid = np.maximum.accumulate(cdf_grid)  # enforce monotone
        cdf_vals = np.interp(
            np.log(thresholds.ravel()), np.log(t_grid), cdf_grid
        ).reshape(thresholds.shape)
        ccdf += p * np.mean(1.0 - cdf_vals, axis=1)

    out = []
    log_y = np.log(y_grid)
    for q in quantiles:
        target = 1.0 - q
        if ccdf[-1] > target:
            raise ValueError("quantile beyond the tabulated y-grid")
        # ccdf is non-increasing; interpolate on the reversed curve.
        ly = float(np.interp(-target, -ccdf, log_y))
        out.append(1.0 + math.exp(ly))  # response slowdown = 1 + W/X
    return out


@experiment("ablate_tails", "Analytic vs simulated slowdown tails (PK inversion)")
def run_ablate_tails(config: ExperimentConfig) -> ExperimentResult:
    workload = get_workload("c90")
    dist = workload.service_dist
    n_jobs = config.jobs(workload.n_jobs * 2)
    seed = point_seed(config, "ablate_tails")
    trace = workload.make_trace(load=_LOAD, n_hosts=2, n_jobs=n_jobs, rng=seed)

    variants = {
        "sita-e": float(equal_load_cutoffs(dist, 2)[0]),
        "sita-u-fair": fair_cutoff(_LOAD, dist),
    }
    rows = []
    for name, cutoff in variants.items():
        result = simulate(trace, SITAPolicy([cutoff], name=name), 2, rng=seed)
        trimmed = result.trimmed(config.warmup_fraction)
        analytic = _sita_slowdown_quantiles(_LOAD, dist, cutoff, _QUANTILES)
        for q, ana in zip(_QUANTILES, analytic):
            sim = float(np.quantile(trimmed.slowdowns, q))
            rows.append(
                {
                    "policy": name,
                    "quantile": q,
                    "simulated": sim,
                    "analytic": ana,
                    "ratio": sim / ana,
                }
            )
    return ExperimentResult(
        experiment_id="ablate_tails",
        title="p95/p99 slowdown: simulation vs PK transform inversion (load 0.7)",
        columns=["policy", "quantile", "simulated", "analytic", "ratio"],
        rows=rows,
        notes=(
            "analytic tails by Abate-Whitt inversion of the per-host PK "
            "transform, mixed over the SITA size classes"
        ),
    )
