"""Figures 2 and 3 — load-balancing policies, 2 and 4 hosts (simulation).

Figure 2: mean slowdown (top) and variance of slowdown (bottom) of
Random, Least-Work-Left and SITA-E on the C90 workload with 2 hosts, as
a function of system load.  Figure 3: the same with 4 hosts (Random was
"by far the worst" and is kept here for completeness).

Expected shape (paper §3.2): Random ≫ LWL ≳ SITA-E at low load; SITA-E
beats LWL by 3–4× at medium/high load; the variance gaps are each about
an order of magnitude.  With 4 hosts both LWL and SITA-E improve while
Random is unchanged, and LWL wins at low loads.
"""

from __future__ import annotations

from ..core.policies import SITAPolicy
from ..core.cutoffs import equal_load_cutoffs
from ..workloads.catalog import get_workload
from ..workloads.distributions import Empirical
from .base import ExperimentConfig, ExperimentResult, experiment
from .common import (
    aggregate_replications,
    balanced_policies,
    evaluate_policy,
    make_split_trace,
    point_seed,
)

__all__ = ["run_fig2", "run_fig3", "balanced_policy_sweep"]

_COLUMNS = [
    "policy",
    "load",
    "n_hosts",
    "mean_slowdown",
    "var_slowdown",
    "mean_response",
    "var_response",
    "mean_wait",
]


def balanced_policy_sweep(
    config: ExperimentConfig,
    workload_name: str,
    n_hosts: int,
    experiment_id: str,
    include_secondary: bool = False,
) -> list[dict]:
    """Sweep the load-balancing policies + SITA-E over system loads."""
    workload = get_workload(workload_name)
    rows = []
    # Small logs (J90/CTC) get a floor so steady-state estimates converge.
    base_jobs = config.jobs(max(workload.n_jobs, 30_000))
    for load in config.sweep_loads():
        per_policy: dict[str, list[dict]] = {}
        for rep in range(config.replications):
            seed = point_seed(
                config, experiment_id, workload_name, n_hosts, load, rep
            )
            train, test = make_split_trace(workload, load, n_hosts, base_jobs, seed)
            cutoffs = equal_load_cutoffs(Empirical(train.service_times), n_hosts)
            policies = balanced_policies(include_secondary) + [
                SITAPolicy(cutoffs, name="sita-e")
            ]
            for policy in policies:
                point = evaluate_policy(test, policy, load, n_hosts, config, seed)
                per_policy.setdefault(policy.name, []).append(point.as_row())
        for reps in per_policy.values():
            rows.append(aggregate_replications(reps))
    return rows


@experiment("fig2", "Balanced policies, 2 hosts, C90 (simulation)")
def run_fig2(config: ExperimentConfig) -> ExperimentResult:
    rows = balanced_policy_sweep(config, "c90", 2, "fig2")
    return ExperimentResult(
        experiment_id="fig2",
        title="Random vs Least-Work-Left vs SITA-E, 2 hosts, C90",
        columns=_COLUMNS,
        rows=rows,
    )


@experiment("fig3", "Balanced policies, 4 hosts, C90 (simulation)")
def run_fig3(config: ExperimentConfig) -> ExperimentResult:
    rows = balanced_policy_sweep(config, "c90", 4, "fig3")
    return ExperimentResult(
        experiment_id="fig3",
        title="Random vs Least-Work-Left vs SITA-E, 4 hosts, C90",
        columns=_COLUMNS,
        rows=rows,
    )
