"""Figure 7 — non-Poisson (bursty) arrivals.

Paper shape: SITA-U still wins for the realistic load range (0.6-0.9);
arrival variability favours LWL as the load approaches 1, shrinking
SITA-U's advantage (the paper sees an outright crossover above 0.95 on
its proprietary scaled trace; we reproduce the monotone trend — see
EXPERIMENTS.md).
"""

from __future__ import annotations

from .conftest import run_and_report, series


def test_fig7(benchmark, bench_config):
    result = run_and_report(benchmark, "fig7", bench_config)

    def ratio_at(load):
        fair = series(result, "mean_slowdown", policy="sita-u-fair", load=load)[0]
        lwl = series(result, "mean_slowdown", policy="least-work-left", load=load)[0]
        return fair / lwl

    # SITA-U wins comfortably in the realistic range.
    for load in (0.6, 0.7, 0.8, 0.9):
        assert ratio_at(load) < 1.0

    # ... but its advantage shrinks as the load approaches 1.
    assert ratio_at(0.98) > ratio_at(0.7)
