"""Figure 4 — SITA-E vs SITA-U-opt vs SITA-U-fair (the headline result).

Paper shape: both load-unbalancing variants improve on SITA-E by 4-10x
in mean slowdown and 10-100x in variance over loads 0.5-0.8, and
SITA-U-fair is only a slight bit worse than SITA-U-opt.
"""

from __future__ import annotations

from .conftest import median_ratio, run_and_report


def test_fig4(benchmark, bench_config):
    result = run_and_report(benchmark, "fig4", bench_config)

    # The unbalancing win in mean slowdown.
    assert median_ratio(result, "mean_slowdown", "sita-e", "sita-u-opt") > 2.0
    assert median_ratio(result, "mean_slowdown", "sita-e", "sita-u-fair") > 1.5

    # The (even larger) variance win.
    assert median_ratio(result, "var_slowdown", "sita-e", "sita-u-opt") > 2.0

    # Fair is close to opt.
    assert median_ratio(result, "mean_slowdown", "sita-u-fair", "sita-u-opt") < 4.0

    # The mechanism: both SITA-U variants underload Host 1.
    for row in result.rows:
        if row["policy"].startswith("sita-u") and row["load"] >= 0.5:
            assert row["load_frac_host0"] < 0.55
