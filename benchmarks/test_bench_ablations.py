"""Ablation benchmarks — the design-choice probes DESIGN.md calls out."""

from __future__ import annotations

import math

import pytest

from .conftest import run_and_report, series


def test_ablate_rr_sq(benchmark, bench_config):
    """Round-Robin ≈ Random, Shortest-Queue ≈ LWL (paper §1.2/§3.3)."""
    result = run_and_report(benchmark, "ablate_rr_sq", bench_config)
    for load in bench_config.sweep_loads():
        rnd = series(result, "mean_slowdown", policy="random", load=load)[0]
        rr = series(result, "mean_slowdown", policy="round-robin", load=load)[0]
        sq = series(result, "mean_slowdown", policy="shortest-queue", load=load)[0]
        lwl = series(result, "mean_slowdown", policy="least-work-left", load=load)[0]
        # RR stays in Random's league (it doesn't reduce size variability);
        # SQ ranks between LWL and Random (queue length is a poor proxy for
        # work when C^2 is 43).
        assert 0.2 * rnd < rr < 2.0 * rnd
        assert lwl < 1.5 * sq
        assert sq < 2.0 * rnd


def test_ablate_tags(benchmark, bench_config):
    """TAGS recovers much of the unbalancing win without size estimates,
    paying in wasted (restarted) work."""
    result = run_and_report(benchmark, "ablate_tags", bench_config)
    for load in (0.3, 0.5, 0.7):
        rows = {r["policy"]: r for r in result.rows if r["load"] == load}
        tags = rows["tags@opt-cutoff"]
        sita = rows["sita-u-opt"]
        lwl = rows["least-work-left"]
        # TAGS wastes some work; SITA none.
        assert tags["wasted_work_frac"] > 0.0
        assert sita["wasted_work_frac"] == 0.0
        # Knowing sizes is at least as good as guessing them.
        assert sita["mean_slowdown"] <= tags["mean_slowdown"] * 1.5
        if load <= 0.5:
            # At low/moderate load TAGS still beats plain LWL.
            assert tags["mean_slowdown"] < lwl["mean_slowdown"]


def test_ablate_estimates(benchmark, bench_config):
    """Section-7 robustness, tested per error direction: the paper's
    claim holds for short-jobs-claimed-long; the reverse direction is the
    costly one it does not discuss."""
    result = run_and_report(benchmark, "ablate_estimates", bench_config)
    rows = {
        (r["error_model"], r["error_level"]): r["mean_slowdown"] for r in result.rows
    }
    by_key = {
        (r["error_model"], r["error_level"]): r for r in result.rows
    }
    exact = by_key[("misclassify/both", 0.0)]["mean_slowdown"]
    lwl = next(
        r["mean_slowdown"] for r in result.rows if r["error_model"] == "lwl-reference"
    )
    # The paper's §7 claim, tested on the right population: bystander
    # shorts are unharmed by shorts-claimed-long errors...
    sl = by_key[("misclassify/short-to-long", 0.1)]
    assert sl["mean_slowdown_bystander_short"] < 4.0 * exact
    # ...while the flipped jobs pay for their own mistake.
    assert sl["mean_slowdown_flipped"] > 10.0 * exact
    # The gaming incentive the paper overlooks: elephants claiming to be
    # short *benefit* while bystander shorts suffer.
    ls = by_key[("misclassify/long-to-short", 0.1)]
    assert ls["mean_slowdown_flipped"] < exact
    assert ls["mean_slowdown_bystander_short"] > sl["mean_slowdown_bystander_short"]
    # Even 2x-multiplicative noise keeps SITA-U-fair ahead of LWL.
    assert rows[("lognormal-noise", 2.0)] < lwl


def test_ablate_variability(benchmark, bench_config):
    """'The best task assignment policy depends on the workload': LWL wins
    at C² = 1, SITA-E wins at high C²."""
    result = run_and_report(benchmark, "ablate_variability", bench_config)

    def gap(scv):
        lwl = series(result, "mean_response", policy="least-work-left", scv=scv)[0]
        sita = series(result, "mean_response", policy="sita-e", scv=scv)[0]
        return sita / lwl

    # LWL is the right choice for exponential-like workloads...
    assert gap(1.0) > 1.0
    # ... and loses badly once the variability is supercomputing-like.
    assert gap(64.0) < 1.0
    # The trend is monotone enough to be a design rule.
    assert gap(64.0) < gap(4.0) < gap(1.0) * 1.5


def test_ablate_fast_vs_event(benchmark, bench_config):
    """The vectorised kernels must agree with the event engine exactly and
    be substantially faster."""
    result = run_and_report(benchmark, "ablate_fast_vs_event", bench_config)
    for row in result.rows:
        assert row["max_wait_gap"] < 1e-6
        assert row["speedup"] > 2.0


def test_ablate_sjf(benchmark, bench_config):
    """SJF-style central queue wins mean slowdown but is biased; SITA-U-fair
    keeps the fairness gap near 1 (paper section 8)."""
    result = run_and_report(benchmark, "ablate_sjf", bench_config)
    for load in (0.5, 0.7):
        rows = {r["policy"]: r for r in result.rows if r["load"] == load}
        sjf = rows["central-sjf"]
        fcfs = rows["central-queue"]
        fair = rows["sita-u-fair"]
        ps = rows["processor-sharing (analytic)"]
        # SJF and SITA-U-fair both dominate the FCFS central queue.
        assert sjf["mean_slowdown"] < fcfs["mean_slowdown"]
        assert fair["mean_slowdown"] < fcfs["mean_slowdown"]
        # SJF is biased against long jobs; SITA-U-fair far less so.
        assert fair["fairness_gap"] < sjf["fairness_gap"]
        # PS is the idealised-fairness reference.
        assert ps["fairness_gap"] == 1.0


def test_ablate_sessions(benchmark, bench_config):
    """Size dependence (sessions) changes the picture for both policies —
    the paper's section-3.3 caveat made measurable."""
    result = run_and_report(benchmark, "ablate_sessions", bench_config)

    def pick(sess, policy):
        for r in result.rows:
            if r["session_length"] == sess and r["policy"] == policy:
                return r["mean_slowdown"]
        raise AssertionError((sess, policy))

    # i.i.d. baseline: SITA-E ahead, as in fig 2.
    assert pick(1.0, "sita-e") < pick(1.0, "least-work-left")
    # Sessions exist for every sweep point and stay finite.
    for r in result.rows:
        assert r["mean_slowdown"] >= 1.0


def test_ablate_predictor(benchmark, bench_config):
    """History-based runtime prediction (section 7): predictor-driven
    SITA-U-fair retains most of the oracle win and beats LWL."""
    result = run_and_report(benchmark, "ablate_predictor", bench_config)
    rows = {r["configuration"]: r["mean_slowdown"] for r in result.rows}
    oracle = rows["sita-u-fair / oracle sizes"]
    predicted = rows["sita-u-fair / predicted"]
    lwl = rows["lwl (true work)"]
    assert predicted < lwl
    assert predicted < 10.0 * oracle
    # Estimated-LWL with exact sizes coincides with true LWL.
    assert rows["estimated-lwl / oracle sizes"] == pytest.approx(lwl, rel=1e-9)


def test_ablate_multicutoff(benchmark, bench_config):
    """Full (h-1)-cutoff SITA-U dominates the grouped 2-cutoff shortcut,
    and the search the paper feared is sub-second on the analytic
    objective."""
    result = run_and_report(benchmark, "ablate_multicutoff", bench_config)
    for h in (3, 4, 6):
        rows = {r["variant"]: r for r in result.rows if r["n_hosts"] == h}
        full = rows["sita-u-opt (full)"]
        sita_e = rows["sita-e"]
        # The full search never loses to load balancing.
        assert full["mean_slowdown"] < sita_e["mean_slowdown"]
        # And its cost is nothing like prohibitive.
        assert full["fit_seconds"] < 30.0
    # At h >= 4 the full search beats the grouped shortcut.
    rows4 = {r["variant"]: r for r in result.rows if r["n_hosts"] == 4}
    assert (
        rows4["sita-u-opt (full)"]["mean_slowdown"]
        < rows4["sita-u-opt (grouped)"]["mean_slowdown"] * 1.5
    )


def test_ablate_tails(benchmark, bench_config):
    """Simulated p95/p99 slowdowns must agree with the PK-transform
    analytics — the deepest end-to-end validation of the analytic stack."""
    result = run_and_report(benchmark, "ablate_tails", bench_config)
    for row in result.rows:
        assert 0.5 < row["ratio"] < 2.0, row
    # SITA-U-fair's tail is far lighter than SITA-E's (the fig-4 variance
    # story, restated as percentiles).
    e99 = next(
        r["simulated"] for r in result.rows
        if r["policy"] == "sita-e" and r["quantile"] == 0.99
    )
    f99 = next(
        r["simulated"] for r in result.rows
        if r["policy"] == "sita-u-fair" and r["quantile"] == 0.99
    )
    assert f99 < e99


def test_ablate_hetero(benchmark, bench_config):
    """Heterogeneous hosts: the fast machine should serve the LONG jobs
    (it shrinks E[X^2] where the PK formula is quadratic), and SITA beats
    LWL on mixed hardware too."""
    result = run_and_report(benchmark, "ablate_hetero", bench_config)
    rows = {r["configuration"]: r for r in result.rows}
    shorts = rows["sita-u-opt/fast-serves-shorts"]
    longs = rows["sita-u-opt/fast-serves-longs"]
    lwl = rows["lwl/fast+slow"]
    # Analytic ordering is unambiguous.
    assert longs["analytic_mean_slowdown"] < shorts["analytic_mean_slowdown"]
    # Simulation agrees that the shorts orientation is not the winner and
    # that any SITA orientation crushes LWL on mixed hardware.
    assert longs["mean_slowdown"] < 1.5 * shorts["mean_slowdown"]
    assert shorts["mean_slowdown"] < lwl["mean_slowdown"]


def test_ablate_objective(benchmark, bench_config):
    """The cutoff objective IS the thesis: minimising mean response drives
    the cutoff back to load balance (SITA-E), minimising mean slowdown
    drives it to unbalance — and each pays on the other metric."""
    result = run_and_report(benchmark, "ablate_objective", bench_config)
    for load in (0.5, 0.7):
        rows = {r["cutoff_objective"]: r for r in result.rows if r["load"] == load}
        slow_opt = rows["opt-for-slowdown"]
        resp_opt = rows["opt-for-response"]
        sita_e = rows["sita-e"]
        # Each objective wins its own metric.
        assert slow_opt["mean_slowdown"] <= resp_opt["mean_slowdown"]
        assert resp_opt["mean_response"] <= slow_opt["mean_response"]
        # The response-optimal cutoff sits at (or near) the load-balance
        # point — the paper's whole story in one comparison.
        assert 0.5 <= resp_opt["cutoff"] / sita_e["cutoff"] <= 2.0
        # And the slowdown-optimal cutoff unbalances (smaller cutoff).
        assert slow_opt["cutoff"] < sita_e["cutoff"]


def test_ablate_calibration(benchmark, bench_config):
    """The DESIGN.md §4 substitution decision, measured: only the shipped
    lognormal calibration reproduces *all* of the paper's magnitude
    claims; either bounded-Pareto pinning loses at least one."""
    result = run_and_report(benchmark, "ablate_calibration", bench_config)
    rows = {r["family"]: r for r in result.rows}
    logn = rows["lognormal"]
    # The shipped calibration shows both effects at paper-like strength.
    assert logn["sita_gain"] > 2.0
    assert logn["unbalance_gain"] > 2.5
    assert abs(logn["opt_load_frac"] - 0.35) < 0.15
    # bp-min (tiny jobs everywhere) erases SITA-E's variance-reduction win.
    assert rows["bp-min"]["sita_gain"] < 2.0
    # bp-max (no tiny jobs) collapses the unbalancing gain.
    assert rows["bp-max"]["unbalance_gain"] < logn["unbalance_gain"] / 2.0
