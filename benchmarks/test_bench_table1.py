"""Table 1 — characteristics of the trace data.

Regenerates the paper's workload-characteristics table from the
calibrated synthetic distributions and one sampled trace each, and
checks the published statistics are hit.
"""

from __future__ import annotations

import pytest

from .conftest import run_and_report


def test_table1(benchmark, bench_config):
    result = run_and_report(benchmark, "table1", bench_config)

    targets = {row["system"]: row for row in result.rows if row["kind"] == "target"}
    sampled = {row["system"]: row for row in result.rows if row["kind"] == "sampled"}

    # Calibration targets = the paper's published statistics.
    assert targets["c90"]["mean_service"] == pytest.approx(4562.6, rel=1e-6)
    assert targets["c90"]["scv"] == pytest.approx(43.0, rel=1e-6)
    assert targets["j90"]["scv"] == pytest.approx(39.0, rel=1e-6)
    assert targets["ctc"]["max_service"] <= 43_200.0

    # Sampled traces must land near their targets (heavy-tail tolerance).
    for name in ("c90", "j90", "ctc"):
        assert sampled[name]["mean_service"] == pytest.approx(
            targets[name]["mean_service"], rel=0.25
        )

    # The paper's structural fact: a tiny fraction of the largest jobs is
    # half the C90 load (1.3% in the paper; a few percent here).
    assert targets["c90"]["half_load_tail"] < 0.06
    # The CTC cap keeps its variability far below the Crays'.
    assert targets["ctc"]["scv"] < targets["c90"]["scv"] / 5
