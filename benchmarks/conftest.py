"""Shared machinery for the benchmark harness.

Each benchmark runs one paper artefact's experiment driver end-to-end
(workload generation → cutoff fitting → simulation/analysis → rows),
prints the regenerated rows/series, writes them to ``results/<id>.csv``,
and asserts the paper's qualitative shape (who wins, roughly by how
much).  ``pytest benchmarks/ --benchmark-only`` therefore both times the
pipeline and regenerates every table and figure.

Benchmarks run at a reduced scale (``BENCH_SCALE``) so the whole harness
finishes in minutes; run the CLI (``repro run fig4``) for paper-scale
rows.  Qualitative assertions use medians across the sweep to damp
heavy-tail sampling noise at this scale.
"""

from __future__ import annotations

import statistics
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, run_experiment

#: job-count multiplier for benchmark runs.
BENCH_SCALE = 0.25

BENCH_CONFIG = ExperimentConfig(scale=BENCH_SCALE, loads=(0.3, 0.5, 0.7, 0.8))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def run_and_report(benchmark, experiment_id: str, config: ExperimentConfig = BENCH_CONFIG):
    """Benchmark one experiment driver and emit its rows."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, config), rounds=1, iterations=1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    result.to_csv(RESULTS_DIR / f"{experiment_id}.csv")
    print()
    print(result.to_text())
    return result


def series(result, metric: str, **filters):
    """Extract one metric series from rows matching ``filters``."""
    out = []
    for row in result.rows:
        if all(row.get(k) == v for k, v in filters.items()):
            out.append(row[metric])
    if not out:
        raise AssertionError(f"no rows matching {filters} in {result.experiment_id}")
    return out


def median_ratio(result, metric: str, policy_a: str, policy_b: str, **filters):
    """Median over the sweep of metric(policy_a)/metric(policy_b)."""
    a = series(result, metric, policy=policy_a, **filters)
    b = series(result, metric, policy=policy_b, **filters)
    assert len(a) == len(b)
    return statistics.median(x / y for x, y in zip(a, b))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG
