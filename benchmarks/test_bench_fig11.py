"""Figure 11 (appendix B) — load fraction and the rho/2 rule on J90."""

from __future__ import annotations

import numpy as np

from repro.core.rules import rule_of_thumb_fit

from .conftest import run_and_report


def test_fig11(benchmark, bench_config):
    result = run_and_report(benchmark, "fig11", bench_config)

    for variant in ("sita-u-opt", "sita-u-fair"):
        rows = [r for r in result.rows if r["variant"] == variant]
        loads = np.array([r["load"] for r in rows])
        fracs = np.array([r["load_frac_analytic"] for r in rows])
        assert np.all(fracs < 0.5)
        assert rule_of_thumb_fit(loads, fracs) < 0.25
