"""Figure 8 (appendix A) — analytic mean slowdown of the balanced policies.

Paper shape: same ordering as the simulation (fig 2), with Round-Robin
close to Random; and close numeric agreement with the fig 2 simulation.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from .conftest import run_and_report, series


def test_fig8(benchmark, bench_config):
    result = run_and_report(benchmark, "fig8", bench_config)

    for load in bench_config.sweep_loads():
        rnd = series(result, "mean_slowdown", policy="random", load=load)[0]
        rr = series(result, "mean_slowdown", policy="round-robin", load=load)[0]
        lwl = series(result, "mean_slowdown", policy="least-work-left", load=load)[0]
        sita = series(result, "mean_slowdown", policy="sita-e", load=load)[0]
        assert rnd > lwl > sita
        assert abs(rr - rnd) / rnd < 0.5  # RR ~ Random (paper §3.3)

    # Analysis agrees with the trace-driven simulation (paper appendix A:
    # "in very close agreement with the simulation results").
    sim = run_experiment("fig2", bench_config)
    for policy in ("random", "sita-e"):
        for load in (0.5, 0.7):
            ana = series(result, "mean_slowdown", policy=policy, load=load)[0]
            obs = series(sim, "mean_slowdown", policy=policy, load=load)[0]
            assert 0.1 < obs / ana < 10.0, (policy, load, ana, obs)
