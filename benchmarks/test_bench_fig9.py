"""Figure 9 (appendix A) — analytic mean slowdown of the SITA family.

Paper shape: SITA-U-opt <= SITA-U-fair < SITA-E at every load, with
agreement against the fig 4 simulation.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from .conftest import run_and_report, series


def test_fig9(benchmark, bench_config):
    result = run_and_report(benchmark, "fig9", bench_config)

    for load in bench_config.sweep_loads():
        e = series(result, "mean_slowdown", policy="sita-e", load=load)[0]
        opt = series(result, "mean_slowdown", policy="sita-u-opt", load=load)[0]
        fair = series(result, "mean_slowdown", policy="sita-u-fair", load=load)[0]
        assert opt <= fair * (1 + 1e-9)  # opt optimises exactly this metric
        assert fair < e
        assert opt < e / 2.0  # the unbalancing win is large

    # Agreement with the simulated fig 4.
    sim = run_experiment("fig4", bench_config)
    for load in (0.5, 0.7):
        ana = series(result, "mean_slowdown", policy="sita-u-fair", load=load)[0]
        obs = series(sim, "mean_slowdown", policy="sita-u-fair", load=load)[0]
        assert 0.2 < obs / ana < 5.0, (load, ana, obs)
