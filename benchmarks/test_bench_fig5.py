"""Figure 5 — fraction of total load on Host 1 and the rho/2 rule.

Paper shape: under both SITA-U-opt and SITA-U-fair the short-job host
receives less than half the load, the fraction grows with the system
load, and it roughly tracks rho/2.
"""

from __future__ import annotations

import numpy as np

from repro.core.rules import rule_of_thumb_fit

from .conftest import run_and_report


def test_fig5(benchmark, bench_config):
    result = run_and_report(benchmark, "fig5", bench_config)

    for variant in ("sita-u-opt", "sita-u-fair"):
        rows = [r for r in result.rows if r["variant"] == variant]
        loads = np.array([r["load"] for r in rows])
        fracs = np.array([r["load_frac_analytic"] for r in rows])

        # Host 1 is underloaded everywhere (SITA-E would sit at 0.5).
        assert np.all(fracs < 0.5)

        # The fraction grows with system load (both in the paper's fig 5).
        assert fracs[np.argsort(loads)][-1] > fracs[np.argsort(loads)][0]

        # Rule-of-thumb quality: RMS distance from rho/2 stays moderate.
        assert rule_of_thumb_fit(loads, fracs) < 0.25
