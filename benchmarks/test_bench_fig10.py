"""Figure 10 (appendix B) — all policies on the J90 workload.

Paper: "All the results for the J90 trace data are virtually identical"
to the C90 — the full policy ordering must replicate.
"""

from __future__ import annotations

from .conftest import median_ratio, run_and_report


def test_fig10(benchmark, bench_config):
    result = run_and_report(benchmark, "fig10", bench_config)

    assert median_ratio(result, "mean_slowdown", "random", "sita-e") > 2.0
    assert median_ratio(result, "mean_slowdown", "sita-e", "sita-u-opt") > 1.5
    assert median_ratio(result, "mean_slowdown", "sita-e", "sita-u-fair") > 1.2
    assert median_ratio(result, "mean_slowdown", "sita-u-fair", "sita-u-opt") < 5.0
