"""Figure 6 — systems with more than 4 machines at load 0.7.

Paper shape: grouped SITA-E beats LWL for small host counts but loses
for large ones; the SITA-U variants dominate until all policies become
comparable around h ≈ 70.
"""

from __future__ import annotations

from .conftest import run_and_report


def pick(result, policy, n_hosts):
    for row in result.rows:
        if row["policy"] == policy and row["n_hosts"] == n_hosts:
            return row["mean_slowdown"]
    raise AssertionError(f"missing {policy} at h={n_hosts}")


def test_fig6(benchmark, bench_config):
    result = run_and_report(benchmark, "fig6", bench_config)

    # Small h: SITA-E beats LWL.
    assert pick(result, "sita-e+lwl", 2) < pick(result, "least-work-left", 2)

    # Large h: LWL catches up as idle hosts become likely (it is the
    # policy that exploits them): SITA-E's advantage collapses from
    # several-fold at h=2 to nothing by h=80, where both policies sit at
    # slowdown ~1 and the strict ordering is noise.
    gap_small = pick(result, "least-work-left", 2) / pick(result, "sita-e+lwl", 2)
    gap_large = pick(result, "least-work-left", 80) / pick(result, "sita-e+lwl", 80)
    assert gap_small > 1.5
    assert gap_large < 1.1
    assert pick(result, "least-work-left", 80) < 1.2  # converged to ~no waiting

    # SITA-U stays ahead of plain LWL at moderate host counts.
    assert pick(result, "sita-u-opt+lwl", 8) < pick(result, "least-work-left", 8)

    # Convergence: at h = 80 every policy is within a modest factor of LWL.
    lwl80 = pick(result, "least-work-left", 80)
    for policy in ("sita-u-opt+lwl", "sita-u-fair+lwl"):
        assert pick(result, policy, 80) < 25 * lwl80

    # LWL improves monotonically-ish in h (more pooling).
    assert pick(result, "least-work-left", 64) < pick(result, "least-work-left", 2)
