"""Figure 2 — Random vs Least-Work-Left vs SITA-E, 2 hosts (simulation).

Paper shape: Random is far worse than everything; SITA-E beats LWL at
medium/high loads (factor 3-4 in the paper); the variance gaps are
larger still.
"""

from __future__ import annotations

from .conftest import median_ratio, run_and_report, series


def test_fig2(benchmark, bench_config):
    result = run_and_report(benchmark, "fig2", bench_config)

    # Random is by far the worst policy, at every load.
    rnd = series(result, "mean_slowdown", policy="random")
    lwl = series(result, "mean_slowdown", policy="least-work-left")
    assert all(r > l for r, l in zip(rnd, lwl))

    # Paper: Random exceeds SITA-E by ~10x in mean slowdown.
    assert median_ratio(result, "mean_slowdown", "random", "sita-e") > 3.0

    # SITA-E beats LWL at the high-load points (>= 0.5 in the paper).
    high = [r for r in result.rows if r["load"] >= 0.7]
    sita_high = [r["mean_slowdown"] for r in high if r["policy"] == "sita-e"]
    lwl_high = [r["mean_slowdown"] for r in high if r["policy"] == "least-work-left"]
    assert sum(sita_high) < sum(lwl_high)

    # Variance in slowdown: SITA-E well below Random.
    assert median_ratio(result, "var_slowdown", "random", "sita-e") > 5.0
