"""Figure 12 (appendix C) — all policies on the CTC workload.

The CTC log has far lower size variability (12-hour kill cap) yet the
paper reports "the comparative performance of the task assignment
policies ... was very similar" — the ordering must survive.
"""

from __future__ import annotations

from .conftest import median_ratio, run_and_report


def test_fig12(benchmark, bench_config):
    result = run_and_report(benchmark, "fig12", bench_config)

    assert median_ratio(result, "mean_slowdown", "random", "sita-e") > 1.1
    assert median_ratio(result, "mean_slowdown", "sita-e", "sita-u-opt") > 1.05
    assert median_ratio(result, "mean_slowdown", "sita-u-fair", "sita-u-opt") < 5.0
