"""Figure 3 — the same comparison with 4 hosts.

Paper shape: LWL and SITA-E both improve a lot going 2 -> 4 hosts while
Random is unchanged; LWL leads at low load, SITA-E at high load.
"""

from __future__ import annotations

from repro.experiments import run_experiment

from .conftest import run_and_report, series


def test_fig3(benchmark, bench_config):
    result = run_and_report(benchmark, "fig3", bench_config)

    # Compare against the 2-host sweep (same seeds/config).
    result2 = run_experiment("fig2", bench_config)

    def total(res, policy):
        return sum(series(res, "mean_slowdown", policy=policy))

    # LWL does not get worse with more hosts (the strong improvement claim
    # is asserted at larger scale in tests/experiments/test_paper_claims.py;
    # at benchmark scale heavy-tail noise across traces allows slack).
    assert total(result, "least-work-left") < 2.0 * total(result2, "least-work-left")

    # Random is worst in the 4-host sweep at every load (as in fig 2 —
    # extra hosts don't help it: each host is an independent M/G/1 at the
    # same utilisation, so unlike LWL/SITA it gains nothing from h).
    for load in bench_config.sweep_loads():
        by_policy = {
            r["policy"]: r["mean_slowdown"] for r in result.rows if r["load"] == load
        }
        assert by_policy["random"] == max(by_policy.values())
    assert 0.2 < total(result, "random") / total(result2, "random") < 5.0

    # Low load: LWL leads; high load: SITA-E leads (paper fig 3).
    low = {r["policy"]: r["mean_slowdown"] for r in result.rows if r["load"] == 0.3}
    high = {r["policy"]: r["mean_slowdown"] for r in result.rows if r["load"] == 0.8}
    assert low["least-work-left"] < low["sita-e"]
    assert high["sita-e"] < high["least-work-left"]
